(** Follower replica: subscribes to a leader's merge stream and rebuilds
    its published sketch, epoch by epoch.

    Replication is a direct cash-out of the merge algebra the pipeline is
    built on: the leader's published state at epoch [e] {e is}
    [fold merge (decode snapshot) deltas(e0+1..e)], so a follower that
    applies exactly that sequence holds a bit-identical summary — the exact
    convergence the tests check with [M.encode] equality after the leader
    drains.

    Between merges the follower is a relaxed replica of a relaxed object:
    its published total always equals the leader's published total {e at
    some recent epoch}, so every follower answer sits inside the leader's
    IVL envelope (the follower can only lag, never invent weight — the
    Theorem-6-style bound the end-to-end tests assert).

    {2 Stream discipline}

    The epoch filter makes the handshake race-free: a delta is applied iff
    its epoch is exactly [local + 1]; epochs [<= local] are duplicates of
    state already inside the seed snapshot (skipped, counted); a gap means
    the leader dropped this subscriber (bounded queue overflow) and the
    stream is {!status} [`Broken] — re-subscribing from scratch is the only
    sound continuation, silently resuming would undercount forever. *)

module Make (M : Pipeline.Mergeable.S) : sig
  type t

  type status =
    [ `Syncing  (** connected, snapshot not yet applied *)
    | `Live  (** snapshot applied; deltas streaming *)
    | `Broken of string  (** gap/decode/transport failure: stream unsound *)
    | `Closed ]

  type stats = {
    epoch : int;  (** last applied epoch; -1 before the snapshot *)
    published : int;  (** follower's replica of the leader's published weight *)
    deltas : int;  (** deltas applied *)
    skipped : int;  (** duplicate epochs skipped (handshake overlap) *)
    status : status;
  }

  val connect :
    ?read_timeout:float -> ?max_frame:int -> host:string -> port:int -> unit -> t
  (** Dial the leader, send {!Frame.Subscribe}, and spawn the apply domain.
      [read_timeout] (default 1 s) paces the apply loop's receive wait — an
      idle leader just means quiet patience, not failure.
      @raise Unix.Unix_error if the dial itself fails. *)

  val query : t -> (M.t -> 'a) -> ('a * int) option
  (** Run [f] on the replica sketch under the replica mutex; the epoch
      identifies the leader prefix it reflects. [None] until the snapshot
      has been applied (or after [`Broken]). *)

  val published : t -> int
  val epoch : t -> int
  val stats : t -> stats
  val status : t -> status

  val wait_epoch : ?timeout:float -> t -> int -> bool
  (** Block (polling) until the replica has applied epoch [>= e] — the
      convergence barrier: after the leader drains at epoch [e], a [true]
      return means the follower holds the leader's exact final state.
      [false] on timeout (default 10 s) or a non-live stream. *)

  val close : t -> unit
  (** Reset the connection and join the apply domain. Idempotent. The
      sketch remains queryable at its last applied epoch. *)
end
