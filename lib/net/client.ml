type overflow = Block | Shed

type stats = {
  pushed : int;
  acked : int;
  sent : int;
  shed : int;
  exhausted : int;
  errors : int;
  reconnects : int;
  duplicates_suppressed : int;
  queued : int;
}

type t = {
  host : string;
  port : int;
  session_base : int64;
  batch : int;
  flush_age : float;
  queue_cap : int;
  overflow : overflow;
  retries : int;
  read_timeout : float;
  (* shared buffer; senders poll (stdlib Condition has no timed wait, so the
     age trigger cannot be a blocking wait) while producers block properly *)
  m : Mutex.t;
  nonfull : Condition.t;
  drained : Condition.t;
  buf : int Queue.t;
  mutable oldest : float;  (* arrival of the oldest buffered key *)
  mutable force : int;  (* pending flush requests: take partials now *)
  mutable in_flight : int;
  mutable closed : bool;
  mutable senders : unit Domain.t array;
  c_pushed : int Atomic.t;
  c_acked : int Atomic.t;
  c_sent : int Atomic.t;
  c_shed : int Atomic.t;
  c_exhausted : int Atomic.t;
  c_errors : int Atomic.t;
  c_reconnects : int Atomic.t;
  c_duplicates : int Atomic.t;
  (* dedicated query connection, serialized *)
  qm : Mutex.t;
  mutable qconn : Conn.t option;
  tracer : Obs.Tracer.t option; (* batch sampling + enqueue/flush spans *)
}

let poll_interval = 0.0005

(* ------------------------------ senders ------------------------------- *)

(* Each sender owns a session: a distinct id announced with Hello on every
   (re)connection, plus a seq counter bumped once per composed batch.
   Retries resend the same (session, seq), which is what lets the server
   suppress the re-application when only the ack was lost. *)
type sender_state = {
  session : int64;
  mutable seq : int;
  mutable conn : Conn.t option;
  mutable ever_connected : bool;
}

let drop_conn st =
  match st.conn with
  | Some c ->
      Conn.close c;
      st.conn <- None
  | None -> ()

let hello st conn =
  if not (Conn.send conn (Frame.encode_request (Frame.Hello { session = st.session })))
  then false
  else
    match Conn.recv conn with
    | Error _ -> false
    | Ok frame -> (
        match Frame.decode_response frame with
        | Ok (Frame.Ack _) -> true
        | _ -> false)

let ensure_conn t st =
  match st.conn with
  | Some c -> Some c
  | None -> (
      match Conn.connect ~host:t.host ~port:t.port with
      | c ->
          Conn.set_read_timeout c t.read_timeout;
          if hello st c then begin
            if st.ever_connected then Atomic.incr t.c_reconnects;
            st.ever_connected <- true;
            st.conn <- Some c;
            Some c
          end
          else begin
            Conn.close c;
            None
          end
      | exception _ -> None)

let attempt t st ~seq ~ctx keys =
  match ensure_conn t st with
  | None -> `Transport
  | Some conn ->
      if
        not
          (Conn.send conn
             (Frame.encode_request
                (Frame.Batch { session = st.session; seq; ctx; keys })))
      then begin
        drop_conn st;
        `Transport
      end
      else begin
        match Conn.recv conn with
        | Error _ ->
            drop_conn st;
            `Transport
        | Ok frame -> (
            match Frame.decode_response frame with
            | Ok (Frame.Ack { accepted; dup; _ }) -> `Acked (accepted, dup)
            | Ok (Frame.Err { code; msg }) ->
                `Rejected (Frame.err_code_to_string code ^ ": " ^ msg)
            | Ok (Frame.Result _) | Error _ ->
                (* protocol confusion: the stream cannot be trusted *)
                drop_conn st;
                `Transport)
      end

let deliver t st ~ctx keys =
  let n = Array.length keys in
  (* one seq per composed batch — every retry below reuses it *)
  let seq = st.seq in
  st.seq <- st.seq + 1;
  (* flush span: send attempt (retries included) through the server's ack *)
  let start_ns = Obs.Tracer.now_ns () in
  let rec go left backoff =
    match attempt t st ~seq ~ctx keys with
    | `Acked (k, dup) ->
        if dup then Atomic.incr t.c_duplicates;
        ignore (Atomic.fetch_and_add t.c_sent n);
        ignore (Atomic.fetch_and_add t.c_acked k);
        ignore (Atomic.fetch_and_add t.c_shed (n - k));
        (match t.tracer with
        | Some tr ->
            ignore
              (Obs.Tracer.record tr ~ctx ~stage:"flush" ~start_ns
                 ~end_ns:(Obs.Tracer.now_ns ()))
        | None -> ())
    | `Rejected _ ->
        (* the server answered: resending the same bytes cannot help *)
        Atomic.incr t.c_errors;
        ignore (Atomic.fetch_and_add t.c_sent n);
        ignore (Atomic.fetch_and_add t.c_shed n)
    | `Transport ->
        Atomic.incr t.c_errors;
        if left > 0 then begin
          Unix.sleepf backoff;
          go (left - 1) (Float.min 0.2 (backoff *. 2.0))
        end
        else begin
          ignore (Atomic.fetch_and_add t.c_shed n);
          (* retry budget gone with the batch's fate unknown: the server
             may or may not have applied it — the one residual
             at-least-once hazard, counted so verdicts can refuse to
             certify a run that hit it *)
          ignore (Atomic.fetch_and_add t.c_exhausted n)
        end
  in
  go t.retries 0.005

let take t =
  Mutex.lock t.m;
  let n = Queue.length t.buf in
  let due =
    n > 0
    && (n >= t.batch || t.force > 0 || t.closed
       || Unix.gettimeofday () -. t.oldest >= t.flush_age)
  in
  let r =
    if due then begin
      let k = min n t.batch in
      let oldest_at = t.oldest in
      let arr = Array.init k (fun _ -> Queue.pop t.buf) in
      if Queue.is_empty t.buf then t.oldest <- infinity;
      t.in_flight <- t.in_flight + 1;
      Condition.broadcast t.nonfull;
      (* oldest_at: arrival of the chunk's oldest key — the enqueue span's
         start when this chunk turns out to be sampled *)
      `Chunk (arr, oldest_at)
    end
    else if t.closed && n = 0 then `Done
    else `Wait
  in
  Mutex.unlock t.m;
  r

let sender_loop t i =
  (* base 0L opts the whole client out of dedup: every sender stays 0L *)
  let session =
    if Int64.equal t.session_base 0L then 0L
    else Int64.add t.session_base (Int64.of_int i)
  in
  let st = { session; seq = 0; conn = None; ever_connected = false } in
  let rec go () =
    match take t with
    | `Done -> drop_conn st
    | `Wait ->
        Unix.sleepf poll_interval;
        go ()
    | `Chunk (arr, oldest_at) ->
        (* Roll the sampling die per composed batch. A sampled chunk gets
           an "enqueue" span (oldest buffered arrival → take) and hands
           its re-parented context to deliver, which speaks net-batch2. *)
        let ctx =
          match t.tracer with
          | None -> Obs.Span.zero
          | Some tr -> (
              match Obs.Tracer.sample tr with
              | None -> Obs.Span.zero
              | Some ctx ->
                  let now = Obs.Tracer.now_ns () in
                  let start_ns =
                    if Float.is_finite oldest_at then
                      int_of_float (oldest_at *. 1e9)
                    else now
                  in
                  let sid =
                    Obs.Tracer.record tr ~ctx ~stage:"enqueue" ~start_ns
                      ~end_ns:now
                  in
                  Obs.Span.with_parent ctx sid)
        in
        deliver t st ~ctx arr;
        Mutex.lock t.m;
        t.in_flight <- t.in_flight - 1;
        if t.in_flight = 0 && Queue.is_empty t.buf then
          Condition.broadcast t.drained;
        Mutex.unlock t.m;
        go ()
  in
  go ()

(* ------------------------------ producers ----------------------------- *)

let push_aux t k ~block =
  Mutex.lock t.m;
  let rec wait_room () =
    if t.closed then false
    else if Queue.length t.buf < t.queue_cap then true
    else if block then begin
      Condition.wait t.nonfull t.m;
      wait_room ()
    end
    else false
  in
  let ok = wait_room () in
  if ok then begin
    if Queue.is_empty t.buf then t.oldest <- Unix.gettimeofday ();
    Queue.push k t.buf;
    Atomic.incr t.c_pushed
  end
  else if not t.closed then Atomic.incr t.c_shed;
  Mutex.unlock t.m;
  ok

let push t k = push_aux t k ~block:(t.overflow = Block)
let try_push t k = push_aux t k ~block:false

let flush t =
  Mutex.lock t.m;
  t.force <- t.force + 1;
  while not (Queue.is_empty t.buf && t.in_flight = 0) do
    Condition.wait t.drained t.m
  done;
  t.force <- t.force - 1;
  Mutex.unlock t.m

(* ------------------------------ queries ------------------------------- *)

let query t q =
  Mutex.lock t.qm;
  let ensure () =
    match t.qconn with
    | Some c -> Some c
    | None -> (
        match Conn.connect ~host:t.host ~port:t.port with
        | c ->
            Conn.set_read_timeout c t.read_timeout;
            t.qconn <- Some c;
            Some c
        | exception _ -> None)
  in
  let reset () =
    match t.qconn with
    | Some c ->
        Conn.close c;
        t.qconn <- None
    | None -> ()
  in
  let r =
    match ensure () with
    | None ->
        Atomic.incr t.c_errors;
        Error "connect failed"
    | Some conn ->
        if not (Conn.send conn (Frame.encode_request (Frame.Query q))) then begin
          Atomic.incr t.c_errors;
          reset ();
          Error "send failed"
        end
        else begin
          match Conn.recv conn with
          | Error e ->
              Atomic.incr t.c_errors;
              reset ();
              Error (Conn.recv_error_to_string e)
          | Ok frame -> (
              match Frame.decode_response frame with
              | Ok resp -> Ok resp
              | Error e ->
                  Atomic.incr t.c_errors;
                  reset ();
                  Error (Wire.Codec.error_to_string e))
        end
  in
  Mutex.unlock t.qm;
  r

(* ------------------------------ lifecycle ----------------------------- *)

let stats t =
  Mutex.lock t.m;
  let queued = Queue.length t.buf in
  Mutex.unlock t.m;
  {
    pushed = Atomic.get t.c_pushed;
    acked = Atomic.get t.c_acked;
    sent = Atomic.get t.c_sent;
    shed = Atomic.get t.c_shed;
    exhausted = Atomic.get t.c_exhausted;
    errors = Atomic.get t.c_errors;
    reconnects = Atomic.get t.c_reconnects;
    duplicates_suppressed = Atomic.get t.c_duplicates;
    queued;
  }

(* A session id must be distinct across client processes and nonzero
   (0L opts out of dedup server-side). Wall clock in microseconds mixed
   with the pid is distinct enough for a test fleet; callers who need
   determinism pass [?session]. Each sender gets base + its index. *)
let default_session_base () =
  let t = Int64.of_float (Unix.gettimeofday () *. 1e6) in
  let pid = Int64.of_int (Unix.getpid () land 0xffff) in
  let base = Int64.logor (Int64.shift_left t 16) pid in
  if Int64.equal base 0L then 1L else base

let create ?(conns = 1) ?(batch = 256) ?(flush_age = 0.05) ?queue
    ?(overflow = Block) ?(retries = 3) ?(read_timeout = 10.0) ?session
    ?metrics ?tracer ~host ~port () =
  if conns <= 0 then invalid_arg "Net.Client: conns must be positive";
  if batch <= 0 then invalid_arg "Net.Client: batch must be positive";
  let session_base =
    match session with
    | Some s -> s
    | None -> default_session_base ()
  in
  let queue_cap = Option.value queue ~default:(8 * batch) in
  if queue_cap <= 0 then invalid_arg "Net.Client: queue must be positive";
  Conn.ignore_sigpipe ();
  let t =
    {
      host;
      port;
      session_base;
      batch;
      flush_age;
      queue_cap;
      overflow;
      retries;
      read_timeout;
      m = Mutex.create ();
      nonfull = Condition.create ();
      drained = Condition.create ();
      buf = Queue.create ();
      oldest = infinity;
      force = 0;
      in_flight = 0;
      closed = false;
      senders = [||];
      c_pushed = Atomic.make 0;
      c_acked = Atomic.make 0;
      c_sent = Atomic.make 0;
      c_shed = Atomic.make 0;
      c_exhausted = Atomic.make 0;
      c_errors = Atomic.make 0;
      c_reconnects = Atomic.make 0;
      c_duplicates = Atomic.make 0;
      qm = Mutex.create ();
      qconn = None;
      tracer;
    }
  in
  (match metrics with
  | None -> ()
  | Some reg ->
      let c name help f = Obs.Registry.counter_fn reg ~help name f in
      c "client_pushed_total" "Keys accepted into the client buffer" (fun () ->
          Atomic.get t.c_pushed);
      c "client_acked_total" "Keys the server acknowledged" (fun () ->
          Atomic.get t.c_acked);
      c "client_shed_total" "Keys shed client-side or lost to retries"
        (fun () -> Atomic.get t.c_shed);
      c "client_errors_total" "Transport/protocol failures" (fun () ->
          Atomic.get t.c_errors);
      c "client_reconnects_total" "Connection re-establishments" (fun () ->
          Atomic.get t.c_reconnects);
      c "client_duplicates_suppressed_total"
        "Retried batches the server acked without re-applying" (fun () ->
          Atomic.get t.c_duplicates);
      c "client_exhausted_total"
        "Keys dropped after retry exhaustion (delivery fate unknown)"
        (fun () -> Atomic.get t.c_exhausted);
      Obs.Registry.gauge_fn reg ~help:"Keys currently buffered"
        "client_queue_depth" (fun () ->
          Mutex.lock t.m;
          let n = Queue.length t.buf in
          Mutex.unlock t.m;
          float_of_int n));
  t.senders <-
    Array.init conns (fun i -> Domain.spawn (fun () -> sender_loop t i));
  t

let sink t =
  Workload.Sink.make
    ~ingest:(fun k -> push t k)
    ~try_ingest:(fun k -> try_push t k)
    ~query:(fun k -> ignore (query t (Frame.Point k)))
    ~flush:(fun () -> flush t)
    ()

let close t =
  let was_closed =
    Mutex.lock t.m;
    let w = t.closed in
    Mutex.unlock t.m;
    w
  in
  if not was_closed then begin
    flush t;
    Mutex.lock t.m;
    t.closed <- true;
    Condition.broadcast t.nonfull;
    Mutex.unlock t.m;
    Array.iter Domain.join t.senders;
    t.senders <- [||];
    Mutex.lock t.qm;
    (match t.qconn with
    | Some c ->
        Conn.close c;
        t.qconn <- None
    | None -> ());
    Mutex.unlock t.qm
  end
