(** A framed TCP connection: length-delimited {!Wire.Codec} blobs over a
    socket, with partial-IO loops, receive timeouts, a frame-size cap and
    byte/frame accounting.

    The connection layer validates only what it must to stay framed — the
    magic (desync is unrecoverable) and the declared payload length (an
    adversarial 2 GiB header must not allocate) — and hands the complete
    frame bytes up. Version, kind, checksum and schema validation belong to
    {!Wire.Codec} / {!Frame}, so a frame with an unknown kind still arrives
    intact and the server can answer "unsupported" instead of dropping the
    connection.

    All receive failures are values, never exceptions: a peer that
    truncates a frame, stalls mid-header (slow-loris) or disconnects
    abruptly yields an {!recv_error}, and the caller resets the
    connection. *)

type t

type recv_error =
  [ `Eof  (** Peer closed (possibly mid-frame — truncation lands here). *)
  | `Timeout  (** No (or not enough) bytes within the receive timeout. *)
  | `Oversized of int  (** Declared payload length exceeds [max_frame]. *)
  | `Bad_header  (** First bytes are not an IVLW magic: stream desync. *) ]

val recv_error_to_string : recv_error -> string

val ignore_sigpipe : unit -> unit
(** Idempotent. A peer that resets mid-write must surface as an [EPIPE]
    result, not kill the process; every server/client entry point calls
    this. *)

val connect : host:string -> port:int -> t
(** TCP connect with [TCP_NODELAY] (frames are latency-sensitive RPCs, not
    bulk streams). @raise Unix.Unix_error on refusal. *)

val of_fd : Unix.file_descr -> t
(** Adopt an accepted socket (sets [TCP_NODELAY]; best-effort). *)

val set_read_timeout : t -> float -> unit
(** Seconds of [SO_RCVTIMEO]; [0.] means block forever. Applies to every
    subsequent {!recv}. *)

val recv : ?max_frame:int -> t -> (Bytes.t, recv_error) result
(** Read exactly one framed blob (header + payload). [max_frame] bounds the
    {e payload} length (default 16 MiB). The returned bytes are the whole
    frame, ready for [Frame.decode_*]. *)

val send : t -> Bytes.t -> bool
(** Write one frame, looping over partial writes. [false] if the peer is
    gone ([EPIPE]/[ECONNRESET]/closed) — the connection is then dead and
    should be closed. Never raises on peer failure. *)

val close : t -> unit
(** Shutdown + close; idempotent. *)

val fd : t -> Unix.file_descr

val bytes_in : t -> int
val bytes_out : t -> int
val frames_in : t -> int
val frames_out : t -> int
(** Monotonic per-connection counters (bytes include framing). *)

val default_max_frame : int
