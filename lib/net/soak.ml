(* Served chaos soak: the full tier — server, batching clients, follower
   replica — driven through a fault-injecting proxy while the server is
   killed and WAL-restarted underneath it.

   Topology:

     feeders -> Client --\                      /-- WAL + dedup journal (dir)
                          >-- Chaos_proxy --> Server (incarnation i)
     Replica <-----------/                      \-- recover_compact -> i+1

   Everything flows through the proxy: injected latency, bit corruption
   (caught by frame checksums -> rejected, never applied), mid-frame
   resets (client retries, dedup suppresses), refused dials, and full
   partitions. The server is additionally stopped and restarted from its
   WAL mid-trace, on a fresh port the proxy's upstream callback picks up
   at the next dial.

   The five verdicts are the IVL story end-to-end:
   - conservation: each incarnation's published weight equals its
     recovered base plus its accepted ingests, and each recovery lands
     exactly on the previous incarnation's final published weight — the
     pipeline invents nothing, loses nothing, across kills;
   - ack envelope: with zero retry-exhausted batches, the client's acked
     total brackets the leader's published weight from above, within
     [restarts * conns * client_batch] (a journal-replayed duplicate ack
     reports the batch's claimed count, which may overstate a drain-time
     partial accept — the only slack effectively-once leaves);
   - replica envelope: the follower never reports more published weight
     than the leader holds at a later instant (it lags, never leads),
     sampled concurrently through every fault and resync;
   - convergence: after quiescing the faults and draining the leader, the
     follower reaches the leader's exact epoch and published weight with
     a bit-for-bit identical encoded sketch;
   - slo: the continuous envelope-SLO monitor (Obs.Slo, Theorem-6 budget
     with chaos slack) never entered Breach — transient fault spikes may
     arm Warning, but sustained over-budget burn is an incident, and the
     zero-tolerance check reads the breach counter at drain. *)

type config = {
  dir : string;  (* WAL + checkpoint + dedup journal directory *)
  shards : int;
  batch : int;  (* engine micro-batch *)
  conns : int;  (* client sender connections *)
  feeders : int;
  client_batch : int;
  retries : int;  (* per-batch delivery attempts; must outlast outages *)
  restarts : int;  (* server kill + WAL-restart cycles *)
  down_time : float;  (* seconds the server stays dead per restart *)
  partitions : int;  (* full network partitions *)
  partition_time : float;
  faults : Chaos_proxy.faults;  (* steady-state wire faults *)
  seed : int64;
  settle : float;  (* timeout for the final convergence barrier *)
}

let default_config ~dir =
  {
    dir;
    shards = 4;
    batch = 128;
    conns = 2;
    feeders = 2;
    client_batch = 128;
    retries = 64;
    restarts = 2;
    down_time = 0.3;
    partitions = 1;
    partition_time = 0.3;
    faults =
      {
        Chaos_proxy.latency = (0.0, 0.002);
        corrupt_prob = 0.005;
        reset_prob = 0.005;
        drop_conn_prob = 0.02;
      };
    seed = 0xC4A05L;
    settle = 30.0;
  }

type verdict = {
  pass : bool;
  reasons : string list;
  conservation : bool;
  ack_envelope : bool;
  replica_envelope : bool;
  convergence : bool;
  slo : bool;
  slo_breaches : int;  (* times the burn-rate machine entered Breach *)
  slo_state : Obs.Slo.state;  (* machine state at drain *)
  restarts_done : int;
  partitions_done : int;
  published : int;  (* leader's final published weight *)
  final_epoch : int;
  acked : int;
  ack_allowance : int;
  duplicates_client : int;  (* dup acks the client observed *)
  duplicates_server : int;  (* batches the dedup window suppressed *)
  exhausted : int;  (* keys lost to retry exhaustion (must be 0) *)
  resyncs : int;  (* replica re-subscriptions *)
  follower_ahead : int;  (* samples where the follower led (must be 0) *)
  samples : int;  (* staleness-envelope samples taken *)
  client : Client.stats;
  proxy : Chaos_proxy.stats;
  driver : Workload.Driver.report;
  wall : float;
}

let shape_universe = function
  | Workload.Trace.Uniform { universe }
  | Workload.Trace.Zipf { universe; _ }
  | Workload.Trace.Drift { universe; _ }
  | Workload.Trace.Burst { universe; _ }
  | Workload.Trace.Hot_flip { universe; _ }
  | Workload.Trace.Adversarial { universe }
  | Workload.Trace.Recorded { universe } ->
      universe

let total_updates ops =
  Array.fold_left
    (fun a arr ->
      Array.fold_left
        (fun a op ->
          match op with
          | Workload.Scenario.Update _ -> a + 1
          | Workload.Scenario.Query _ -> a)
        a arr)
    0 ops

module Make (M : Pipeline.Mergeable.S) = struct
  module Srv = Server.Make (M)
  module Rep = Replica.Make (M)
  module R = Durable.Recovery.Make (M)

  type incarnation = { srv : Srv.t; wal : Durable.Wal.writer; base : int }

  let validate c =
    let bad fmt = Printf.ksprintf invalid_arg fmt in
    if c.shards <= 0 then bad "Net.Soak: shards must be positive";
    if c.conns <= 0 then bad "Net.Soak: conns must be positive";
    if c.feeders <= 0 then bad "Net.Soak: feeders must be positive";
    if c.client_batch <= 0 then bad "Net.Soak: client_batch must be positive";
    if c.restarts < 0 then bad "Net.Soak: restarts must be >= 0";
    if c.partitions < 0 then bad "Net.Soak: partitions must be >= 0"

  let run ?(progress = fun _ -> ()) ?metrics ?tracer ?http_port ?record c
      ~spec ~ops () =
    validate c;
    let reg =
      match metrics with Some r -> r | None -> Obs.Registry.create ()
    in
    let t_start = Unix.gettimeofday () in
    (* ---- server incarnations over one durable directory ---- *)
    let sm = Mutex.create () in
    let cur = ref None in
    let last_final = ref 0 in
    let port_ref = ref 0 in
    let conservation_failures = ref 0 in
    let recovery_mismatches = ref 0 in
    let dup_server = ref 0 in
    let start_incarnation () =
      let wal = ref None in
      let base = ref 0 in
      let srv =
        Srv.create ~host:"127.0.0.1" ~port:0 ~max_conns:(c.conns + 8)
          ~read_timeout:5.0 ~sub_queue:4096 ~dedup_dir:c.dir ~metrics:reg
          ?tracer
          ~eval:(fun _ _ -> None)
          ~make_engine:(fun ~on_merge ->
            let initial =
              if Result.is_ok (Durable.Wal.validate_dir ~dir:c.dir ()) then
                match R.recover_compact ~metrics:reg ~dir:c.dir () with
                | Ok (sk0, r) when r.R.recovered_epoch > 0 ->
                    Some (sk0, r.R.recovered_epoch, r.R.recovered_published)
                | _ -> None
              else None
            in
            (match initial with Some (_, _, p) -> base := p | None -> ());
            wal := Some (Durable.Wal.create ~dir:c.dir ~metrics:reg ());
            let on_merge ~ctx ~epoch ~weight ~blob =
              (match !wal with
              | Some w ->
                  (* the WAL append is the waterfall's last server-side
                     stage: time it under the merged delta's context *)
                  let t0 =
                    match tracer with
                    | Some _ when not (Obs.Span.is_zero ctx) ->
                        Obs.Tracer.now_ns ()
                    | _ -> 0
                  in
                  Durable.Wal.append w ~epoch ~weight ~blob;
                  (match tracer with
                  | Some tr when not (Obs.Span.is_zero ctx) ->
                      ignore
                        (Obs.Tracer.record tr ~ctx ~stage:"wal" ~start_ns:t0
                           ~end_ns:(Obs.Tracer.now_ns ()))
                  | _ -> ())
              | None -> ());
              on_merge ~ctx ~epoch ~weight ~blob
            in
            Srv.P.create ~shards:c.shards ~batch:c.batch ~metrics:reg
              ?tracer ~on_merge ?initial ())
          ()
      in
      (* recovery exactness: each incarnation must resume precisely where
         the previous one drained — the cross-restart half of conservation *)
      if !base <> !last_final then incr recovery_mismatches;
      let wal = match !wal with Some w -> w | None -> assert false in
      let inc = { srv; wal; base = !base } in
      Mutex.lock sm;
      cur := Some inc;
      port_ref := Srv.port srv;
      Mutex.unlock sm;
      inc
    in
    let stop_incarnation () =
      Mutex.lock sm;
      let inc = !cur in
      Mutex.unlock sm;
      match inc with
      | None -> ()
      | Some { srv; wal; base } ->
          (* [cur] stays set through the drain: the staleness sampler must
             keep seeing the live engine's growing published weight — the
             final fan-out reaches the replica before the drained total
             lands in last_final, and a cleared [cur] would compare the
             replica against the previous incarnation's stale final *)
          let st = Srv.stop srv in
          Durable.Wal.close wal;
          let est = Srv.P.stats (Srv.engine srv) in
          (* in-incarnation conservation: what drained is what was accepted *)
          if est.Srv.P.published <> base + st.Srv.ingested then
            incr conservation_failures;
          dup_server := !dup_server + st.Srv.duplicates;
          Mutex.lock sm;
          last_final := est.Srv.P.published;
          cur := None;
          Mutex.unlock sm
    in
    ignore (start_incarnation ());
    (* ---- the proxy everyone talks through ---- *)
    let proxy =
      Chaos_proxy.create ~seed:(Int64.add c.seed 0xBADL)
        ~upstream:(fun () ->
          Mutex.lock sm;
          let p = !port_ref in
          Mutex.unlock sm;
          ("127.0.0.1", p))
        ()
    in
    (* replica's first dial must land, so faults arm after the handshake *)
    let rep =
      Rep.connect ~read_timeout:1.0 ~resync_backoff:0.05 ~metrics:reg
        ?tracer ~host:"127.0.0.1" ~port:(Chaos_proxy.port proxy) ()
    in
    let cli =
      Client.create ~conns:c.conns ~batch:c.client_batch ~retries:c.retries
        ~read_timeout:2.0 ~overflow:Client.Block
        ~session:(Int64.add c.seed 0x5E55L) ~metrics:reg ?tracer
        ~host:"127.0.0.1" ~port:(Chaos_proxy.port proxy) ()
    in
    Chaos_proxy.set_faults proxy c.faults;
    (* ---- staleness sampler: follower lags, never leads ---- *)
    let sampler_stop = Atomic.make false in
    let ahead = Atomic.make 0 in
    let samples = Atomic.make 0 in
    let leader_pub () =
      Mutex.lock sm;
      let p =
        match !cur with
        | Some inc -> (Srv.P.stats (Srv.engine inc.srv)).Srv.P.published
        | None -> !last_final
      in
      Mutex.unlock sm;
      p
    in
    (* ---- envelope SLO: Theorem-6 budget, burn-rate machine ----
       slack 4.0 (double the theorem's default) because a chaos soak
       legitimately spikes every dimension: restarts park the merger,
       partitions freeze the replica. Dimensions read -1 (= unknown,
       in-budget) when there is no live incarnation or the follower is
       mid-resync — a dead leader is a restart in progress, not an SLO
       burn. *)
    let slo =
      Obs.Slo.create ~metrics:reg
        ~budget:
          (Obs.Slo.theorem6_budget ~slack:4.0 ~shards:c.shards ~batch:c.batch
             ~queue_capacity:1024 ())
        ~envelope:(fun () ->
          Mutex.lock sm;
          let v =
            match !cur with
            | None -> -1.0
            | Some inc ->
                let st = Srv.P.stats (Srv.engine inc.srv) in
                let accepted =
                  Array.fold_left
                    (fun a (s : Srv.P.shard_stats) ->
                      a + s.Srv.P.enqueued - s.Srv.P.dropped)
                    0 st.Srv.P.shards
                in
                float_of_int
                  (max 0 (inc.base + accepted - st.Srv.P.published))
          in
          Mutex.unlock sm;
          v)
        ~staleness:(fun () ->
          match (Rep.stats rep).Rep.status with
          | `Live ->
              float_of_int (max 0 (leader_pub () - Rep.published rep))
          | _ -> -1.0)
        ~merge_lag:(fun () ->
          Mutex.lock sm;
          let v =
            match !cur with
            | None -> -1.0
            | Some inc ->
                let lag =
                  (Srv.P.stats (Srv.engine inc.srv)).Srv.P.merge_lag
                in
                let n = Array.length lag in
                if n = 0 then -1.0 else lag.(n - 1)
          in
          Mutex.unlock sm;
          v)
        ()
    in
    let sampler =
      Domain.spawn (fun () ->
          let tick = ref 0 in
          while not (Atomic.get sampler_stop) do
            (* order matters: read the follower first, the leader second —
               the leader only grows, so rep > lead is a genuine lead *)
            let rp = Rep.published rep in
            let lp = leader_pub () in
            if rp > lp then Atomic.incr ahead;
            Atomic.incr samples;
            incr tick;
            (* ~20ms SLO cadence: breach_after 5 then means >=100ms of
               sustained over-budget burn, not one unlucky sample *)
            if !tick mod 10 = 0 then ignore (Obs.Slo.eval slo);
            Unix.sleepf 0.002
          done)
    in
    (* ---- drive the trace from a background domain ---- *)
    let driver_done = Atomic.make false in
    let driver_res = ref None in
    let driver_d =
      Domain.spawn (fun () ->
          let r =
            Workload.Driver.run ~feeders:c.feeders ~metrics:reg
              ~make_sink:(fun ~feeder:_ -> Client.sink cli)
              ~spec ~ops ()
          in
          driver_res := Some r;
          Atomic.set driver_done true)
    in
    (* ---- orchestrator: fire restarts and partitions mid-trace ---- *)
    let restarts_done = ref 0 in
    let partitions_done = ref 0 in
    (* ---- live telemetry plane: scrape the soak while it burns ---- *)
    let http =
      match http_port with
      | None -> None
      | Some p ->
          let health () =
            [
              ("leader_published", string_of_int (leader_pub ()));
              ("replica_published", string_of_int (Rep.published rep));
              ("client_acked",
               string_of_int (Client.stats cli).Client.acked);
              ("restarts", string_of_int !restarts_done);
              ("partitions", string_of_int !partitions_done);
            ]
          in
          let h =
            Obs.Http.create ~port:p
              ~handler:
                (Obs.Http.telemetry_handler ~registry:reg ?tracer ~slo
                   ~health ())
              ()
          in
          progress
            (Printf.sprintf "telemetry: http://127.0.0.1:%d/metrics"
               (Obs.Http.port h));
          Some h
    in
    let fire = function
      | `Restart ->
          progress
            (Printf.sprintf "restart %d: stopping server (published %d)"
               (!restarts_done + 1) (leader_pub ()));
          stop_incarnation ();
          Unix.sleepf c.down_time;
          let inc = start_incarnation () in
          incr restarts_done;
          progress
            (Printf.sprintf "restart %d: recovered published %d on port %d"
               !restarts_done inc.base (Srv.port inc.srv))
      | `Partition ->
          progress
            (Printf.sprintf "partition %d: severing all flows for %.2fs"
               (!partitions_done + 1) c.partition_time);
          Chaos_proxy.set_partition proxy true;
          Unix.sleepf c.partition_time;
          Chaos_proxy.set_partition proxy false;
          incr partitions_done
    in
    let events =
      (* interleave: restart, partition, restart, ... then leftovers *)
      let rec weave r p =
        if r = 0 && p = 0 then []
        else if r >= p && r > 0 then `Restart :: weave (r - 1) p
        else `Partition :: weave r (p - 1)
      in
      weave c.restarts c.partitions
    in
    let n_events = List.length events in
    let updates = total_updates ops in
    (* thresholds on the client's acked count: events land mid-stream, at
       even fractions of the update volume, deterministically ordered *)
    let threshold i = updates * (i + 1) / (n_events + 1) in
    List.iteri
      (fun i ev ->
        let target = threshold i in
        let rec wait () =
          if Atomic.get driver_done then ()
          else if (Client.stats cli).Client.acked >= target then ()
          else begin
            Unix.sleepf 0.01;
            wait ()
          end
        in
        wait ();
        fire ev)
      events;
    Domain.join driver_d;
    let driver =
      match !driver_res with Some r -> r | None -> assert false
    in
    (* ---- quiesce: transparent wire, resolve every in-flight batch ---- *)
    Chaos_proxy.set_partition proxy false;
    Chaos_proxy.set_faults proxy Chaos_proxy.no_faults;
    Client.close cli;
    let cli_stats = Client.stats cli in
    (* ---- final drain + convergence barrier ---- *)
    Mutex.lock sm;
    let final_inc = !cur in
    Mutex.unlock sm;
    let final_epoch, final_pub, leader_blob =
      match final_inc with
      | None -> (-1, !last_final, Bytes.empty)
      | Some { srv; _ } ->
          let eng = Srv.engine srv in
          Srv.P.drain eng;
          let blob, ep, pub = Srv.P.snapshot eng in
          (ep, pub, blob)
    in
    let caught_up = Rep.wait_epoch ~timeout:c.settle rep final_epoch in
    Atomic.set sampler_stop true;
    Domain.join sampler;
    let rep_stats = Rep.stats rep in
    let rep_blob =
      match Rep.query rep M.encode with Some (b, _) -> Some b | None -> None
    in
    Rep.close rep;
    stop_incarnation ();
    let proxy_stats = Chaos_proxy.stop proxy in
    (* one last advance of the burn-rate machine, then read its history *)
    let slo_final = Obs.Slo.eval slo in
    let slo_breaches = Obs.Slo.breaches slo in
    (match http with Some h -> Obs.Http.stop h | None -> ());
    (* ---- verdicts ---- *)
    let reasons = ref [] in
    let add fmt = Printf.ksprintf (fun m -> reasons := m :: !reasons) fmt in
    let conservation =
      !conservation_failures = 0 && !recovery_mismatches = 0
    in
    if !conservation_failures > 0 then
      add "%d incarnations broke published = recovered + ingested"
        !conservation_failures;
    if !recovery_mismatches > 0 then
      add "%d recoveries missed the previous published weight"
        !recovery_mismatches;
    let ack_allowance = !restarts_done * c.conns * c.client_batch in
    let ack_envelope =
      cli_stats.Client.exhausted = 0
      && cli_stats.Client.acked >= final_pub
      && cli_stats.Client.acked - final_pub <= ack_allowance
    in
    if cli_stats.Client.exhausted > 0 then
      add "%d keys exhausted their retries (delivery fate unknown)"
        cli_stats.Client.exhausted;
    if cli_stats.Client.acked < final_pub then
      add "acked %d < published %d: weight appeared without an ack"
        cli_stats.Client.acked final_pub;
    if cli_stats.Client.acked - final_pub > ack_allowance then
      add "acked %d exceeds published %d beyond the restart allowance %d"
        cli_stats.Client.acked final_pub ack_allowance;
    let replica_envelope =
      Atomic.get samples > 0
      && Atomic.get ahead = 0
      && (n_events = 0 || rep_stats.Rep.resyncs >= 1)
    in
    if Atomic.get samples = 0 then add "no staleness samples taken";
    if Atomic.get ahead > 0 then
      add "follower led the leader in %d of %d samples" (Atomic.get ahead)
        (Atomic.get samples);
    if n_events > 0 && rep_stats.Rep.resyncs < 1 then
      add "no replica resync despite %d fault events" n_events;
    let convergence =
      caught_up
      && rep_stats.Rep.epoch = final_epoch
      && rep_stats.Rep.published = final_pub
      && (match rep_blob with
         | Some b -> Bytes.equal b leader_blob
         | None -> false)
    in
    if not caught_up then
      add "replica failed to reach epoch %d within %.1fs (status %s)"
        final_epoch c.settle
        (match rep_stats.Rep.status with
        | `Syncing -> "syncing"
        | `Live -> "live"
        | `Resyncing m -> "resyncing: " ^ m
        | `Broken m -> "broken: " ^ m
        | `Closed -> "closed")
    else begin
      if rep_stats.Rep.published <> final_pub then
        add "replica published %d <> leader %d" rep_stats.Rep.published
          final_pub;
      match rep_blob with
      | Some b when not (Bytes.equal b leader_blob) ->
          add "replica sketch diverged from the leader bit-for-bit";
      | None -> add "replica held no sketch at the end"
      | Some _ -> ()
    end;
    (* zero tolerance at drain: the machine may have armed Warning during
       chaos, but an actual Breach — sustained over-budget burn — fails
       the run *)
    let slo_ok = slo_breaches = 0 in
    if slo_breaches > 0 then
      add "SLO breached %d times (worst dim %s at %.2fx budget)"
        slo_breaches slo_final.Obs.Slo.worst_dim
        slo_final.Obs.Slo.worst_ratio;
    (* ---- optional incident capture: freeze the driven ops ---- *)
    (match record with
    | None -> ()
    | Some path ->
        let spec' =
          {
            spec with
            Workload.Trace.phases =
              List.map
                (fun (p : Workload.Trace.phase) ->
                  {
                    p with
                    Workload.Trace.rate = Workload.Trace.Unlimited;
                    shape =
                      Workload.Trace.Recorded
                        { universe = shape_universe p.Workload.Trace.shape };
                  })
                spec.Workload.Trace.phases;
          }
        in
        (match Workload.Trace.write ~path spec' ops with
        | Ok () -> progress (Printf.sprintf "recorded trace to %s" path)
        | Error m -> add "trace record failed: %s" m));
    {
      pass = !reasons = [];
      reasons = List.rev !reasons;
      conservation;
      ack_envelope;
      replica_envelope;
      convergence;
      slo = slo_ok;
      slo_breaches;
      slo_state = slo_final.Obs.Slo.state;
      restarts_done = !restarts_done;
      partitions_done = !partitions_done;
      published = final_pub;
      final_epoch;
      acked = cli_stats.Client.acked;
      ack_allowance;
      duplicates_client = cli_stats.Client.duplicates_suppressed;
      duplicates_server = !dup_server;
      exhausted = cli_stats.Client.exhausted;
      resyncs = rep_stats.Rep.resyncs;
      follower_ahead = Atomic.get ahead;
      samples = Atomic.get samples;
      client = cli_stats;
      proxy = proxy_stats;
      driver;
      wall = Unix.gettimeofday () -. t_start;
    }

  let verdict_to_string v =
    let b = Buffer.create 1024 in
    let line name ok detail =
      Buffer.add_string b
        (Printf.sprintf "served-soak: %s %s (%s)\n" name
           (if ok then "PASS" else "FAIL")
           detail)
    in
    line "conservation" v.conservation
      (Printf.sprintf "published %d across %d restarts, %d partitions"
         v.published v.restarts_done v.partitions_done);
    line "ack envelope" v.ack_envelope
      (Printf.sprintf "acked %d, published %d, slack <= %d, exhausted %d"
         v.acked v.published v.ack_allowance v.exhausted);
    line "replica envelope" v.replica_envelope
      (Printf.sprintf "%d samples, %d follower-ahead, %d resyncs" v.samples
         v.follower_ahead v.resyncs);
    line "convergence" v.convergence
      (Printf.sprintf "epoch %d, bit-for-bit after quiesce" v.final_epoch);
    line "slo" v.slo
      (Printf.sprintf "%d breaches, final state %s" v.slo_breaches
         (Obs.Slo.state_to_string v.slo_state));
    Buffer.add_string b
      (Printf.sprintf
         "served-soak: %d duplicates suppressed (client saw %d), %d proxy \
          resets, %d corruptions, %d refused dials, %d reconnects, %.1fs\n"
         v.duplicates_server v.duplicates_client v.proxy.Chaos_proxy.resets
         v.proxy.Chaos_proxy.corruptions v.proxy.Chaos_proxy.refused
         v.client.Client.reconnects v.wall);
    List.iter
      (fun m -> Buffer.add_string b (Printf.sprintf "FAIL: %s\n" m))
      v.reasons;
    Buffer.add_string b
      (Printf.sprintf "served-soak: %s\n" (if v.pass then "PASS" else "FAIL"));
    Buffer.contents b
end
