module Make (M : Pipeline.Mergeable.S) = struct
  type status = [ `Syncing | `Live | `Broken of string | `Closed ]

  type stats = {
    epoch : int;
    published : int;
    deltas : int;
    skipped : int;
    status : status;
  }

  type t = {
    conn : Conn.t;
    max_frame : int;
    m : Mutex.t;
    mutable sketch : M.t option;
    mutable epoch : int;
    mutable published : int;
    mutable deltas : int;
    mutable skipped : int;
    mutable st : status;
    mutable closing : bool;
    mutable apply_d : unit Domain.t option;
  }

  let broken t msg =
    Mutex.lock t.m;
    (match t.st with `Closed -> () | _ -> t.st <- `Broken msg);
    Mutex.unlock t.m

  let apply_snapshot t ~epoch ~published ~blob =
    match M.decode blob with
    | Error e -> broken t ("snapshot decode: " ^ Wire.Codec.error_to_string e)
    | Ok sk ->
        Mutex.lock t.m;
        t.sketch <- Some sk;
        t.epoch <- epoch;
        t.published <- published;
        t.st <- `Live;
        Mutex.unlock t.m

  (* The epoch filter: exactly-next applies, older duplicates (state the
     seed snapshot already contains) are skipped, anything else is a gap —
     the leader dropped us, and resuming would silently undercount. *)
  let apply_delta t ~epoch ~weight ~blob =
    Mutex.lock t.m;
    let verdict =
      match t.sketch with
      | None -> `Gap  (* a delta before any snapshot: broken handshake *)
      | Some _ when epoch <= t.epoch -> `Skip
      | Some sk when epoch = t.epoch + 1 -> `Apply sk
      | Some _ -> `Gap
    in
    (match verdict with
    | `Skip -> t.skipped <- t.skipped + 1
    | _ -> ());
    Mutex.unlock t.m;
    match verdict with
    | `Skip -> ()
    | `Gap ->
        broken t
          (Printf.sprintf "epoch gap: got %d at local %d" epoch t.epoch)
    | `Apply sk -> (
        match M.decode blob with
        | Error e -> broken t ("delta decode: " ^ Wire.Codec.error_to_string e)
        | Ok delta ->
            let merged = M.merge sk delta in
            Mutex.lock t.m;
            t.sketch <- Some merged;
            t.epoch <- epoch;
            t.published <- t.published + weight;
            t.deltas <- t.deltas + 1;
            Mutex.unlock t.m)

  let live_or_syncing t =
    Mutex.lock t.m;
    let r = match t.st with `Syncing | `Live -> true | _ -> false in
    Mutex.unlock t.m;
    r

  let apply_loop t =
    let rec go () =
      if live_or_syncing t && not t.closing then
        match Conn.recv ~max_frame:t.max_frame t.conn with
        | Error `Timeout -> go () (* idle leader: keep waiting *)
        | Error e ->
            if not t.closing then broken t (Conn.recv_error_to_string e);
            ()
        | Ok frame -> (
            match Frame.decode_push frame with
            | Error e -> broken t (Wire.Codec.error_to_string e)
            | Ok (Frame.Snapshot { epoch; published; blob }) ->
                apply_snapshot t ~epoch ~published ~blob;
                go ()
            | Ok (Frame.Delta { epoch; weight; blob }) ->
                apply_delta t ~epoch ~weight ~blob;
                go ())
    in
    go ()

  let connect ?(read_timeout = 1.0) ?(max_frame = Conn.default_max_frame)
      ~host ~port () =
    let conn = Conn.connect ~host ~port in
    Conn.set_read_timeout conn read_timeout;
    let t =
      {
        conn;
        max_frame;
        m = Mutex.create ();
        sketch = None;
        epoch = -1;
        published = 0;
        deltas = 0;
        skipped = 0;
        st = `Syncing;
        closing = false;
        apply_d = None;
      }
    in
    if not (Conn.send conn (Frame.encode_request (Frame.Subscribe { from_epoch = 0 })))
    then begin
      Conn.close conn;
      broken t "subscribe handshake failed"
    end
    else t.apply_d <- Some (Domain.spawn (fun () -> apply_loop t));
    t

  let query t f =
    Mutex.lock t.m;
    let r =
      match t.sketch with
      | Some sk -> Some (f sk, t.epoch)
      | None -> None
    in
    Mutex.unlock t.m;
    r

  let stats t =
    Mutex.lock t.m;
    let s =
      {
        epoch = t.epoch;
        published = t.published;
        deltas = t.deltas;
        skipped = t.skipped;
        status = t.st;
      }
    in
    Mutex.unlock t.m;
    s

  let published t = (stats t).published
  let epoch t = (stats t).epoch
  let status t = (stats t).status

  let wait_epoch ?(timeout = 10.0) t e =
    let deadline = Unix.gettimeofday () +. timeout in
    let rec go () =
      let s = stats t in
      if s.epoch >= e && s.status = `Live then true
      else if
        (match s.status with `Broken _ | `Closed -> true | _ -> false)
        || Unix.gettimeofday () > deadline
      then false
      else begin
        Unix.sleepf 0.002;
        go ()
      end
    in
    go ()

  let close t =
    if not t.closing then begin
      t.closing <- true;
      Conn.close t.conn;
      (match t.apply_d with Some d -> Domain.join d | None -> ());
      t.apply_d <- None;
      Mutex.lock t.m;
      (match t.st with `Broken _ -> () | _ -> t.st <- `Closed);
      Mutex.unlock t.m
    end
end
