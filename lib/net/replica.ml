module Make (M : Pipeline.Mergeable.S) = struct
  type status =
    [ `Syncing | `Live | `Resyncing of string | `Broken of string | `Closed ]

  type stats = {
    epoch : int;
    published : int;
    deltas : int;
    skipped : int;
    resyncs : int;
    last_break : string option;
    status : status;
  }

  type t = {
    host : string;
    port : int;
    read_timeout : float;
    max_frame : int;
    resync_backoff : float;
    max_resyncs : int;
    tracer : Obs.Tracer.t option;
    m : Mutex.t;
    mutable conn : Conn.t option;
    mutable sketch : M.t option;
    mutable epoch : int;
    mutable published : int;
    mutable deltas : int;
    mutable skipped : int;
    mutable resyncs : int;
    mutable last_break : string option;
    mutable st : status;
    mutable closing : bool;
    mutable apply_d : unit Domain.t option;
  }

  let current_conn t =
    Mutex.lock t.m;
    let c = t.conn in
    Mutex.unlock t.m;
    c

  (* Dial + subscribe, the whole handshake. The caller decides what a
     [None] means (first connect raises, resync retries). *)
  let dial t =
    match Conn.connect ~host:t.host ~port:t.port with
    | exception _ -> None
    | conn ->
        Conn.set_read_timeout conn t.read_timeout;
        if
          Conn.send conn
            (Frame.encode_request (Frame.Subscribe { from_epoch = 0 }))
        then Some conn
        else begin
          Conn.close conn;
          None
        end

  (* Tear the stream down and re-subscribe from scratch. The old sketch is
     kept queryable meanwhile — during catch-up the replica serves its last
     applied epoch, which still sits inside the leader's envelope (it can
     only lag further, never invent weight). Returns [true] once a new
     subscription is live on the wire (the fresh snapshot then resets the
     epoch filter), [false] when the replica is done (closed, or out of
     resync budget → [`Broken]). *)
  let resync t reason =
    Mutex.lock t.m;
    (match t.conn with Some c -> Conn.close c | None -> ());
    t.conn <- None;
    t.last_break <- Some reason;
    if t.closing then begin
      Mutex.unlock t.m;
      false
    end
    else if t.resyncs >= t.max_resyncs then begin
      t.st <- `Broken reason;
      Mutex.unlock t.m;
      false
    end
    else begin
      t.st <- `Resyncing reason;
      Mutex.unlock t.m;
      let rec redial () =
        if t.closing then false
        else begin
          (* pace every attempt, not just failed connects: a refusing
             middlebox (partition, dead upstream) often accepts the dial
             and swallows the subscribe before resetting, so a completed
             handshake send is no proof the stream is healthy — without
             this the break-redial cycle spins at wire speed *)
          Unix.sleepf t.resync_backoff;
          if t.closing then false
          else
            match dial t with
            | None -> redial ()
              | Some conn ->
                Mutex.lock t.m;
                if t.closing then begin
                  Mutex.unlock t.m;
                  Conn.close conn;
                  false
                end
                else begin
                  t.conn <- Some conn;
                  t.resyncs <- t.resyncs + 1;
                  Mutex.unlock t.m;
                  true
                end
        end
      in
      redial ()
    end

  let apply_snapshot t ~epoch ~published ~blob =
    match M.decode blob with
    | Error e -> Error ("snapshot decode: " ^ Wire.Codec.error_to_string e)
    | Ok sk ->
        Mutex.lock t.m;
        t.sketch <- Some sk;
        t.epoch <- epoch;
        t.published <- published;
        t.st <- `Live;
        Mutex.unlock t.m;
        Ok ()

  (* The epoch filter: exactly-next applies, older duplicates (state the
     seed snapshot already contains) are skipped, anything else is a gap —
     the leader dropped us, and resuming would silently undercount. *)
  let apply_delta t ~epoch ~weight ~blob =
    Mutex.lock t.m;
    let verdict =
      match t.sketch with
      | None -> `Gap  (* a delta before any snapshot: broken handshake *)
      | Some _ when epoch <= t.epoch -> `Skip
      | Some sk when epoch = t.epoch + 1 -> `Apply sk
      | Some _ -> `Gap
    in
    (match verdict with
    | `Skip -> t.skipped <- t.skipped + 1
    | _ -> ());
    Mutex.unlock t.m;
    match verdict with
    | `Skip -> Ok ()
    | `Gap ->
        Error (Printf.sprintf "epoch gap: got %d at local %d" epoch t.epoch)
    | `Apply sk -> (
        (* deltas arrive without a wire context (the fan-out strips it),
           so replica spans are locally sampled roots: the same tracer
           rate decides, and a sampled apply times decode + merge *)
        let ctx =
          match t.tracer with
          | None -> Obs.Span.zero
          | Some tr -> (
              match Obs.Tracer.sample tr with
              | Some ctx -> ctx
              | None -> Obs.Span.zero)
        in
        let t0 =
          if Obs.Span.is_zero ctx then 0 else Obs.Tracer.now_ns ()
        in
        match M.decode blob with
        | Error e -> Error ("delta decode: " ^ Wire.Codec.error_to_string e)
        | Ok delta ->
            let merged = M.merge sk delta in
            Mutex.lock t.m;
            t.sketch <- Some merged;
            t.epoch <- epoch;
            t.published <- t.published + weight;
            t.deltas <- t.deltas + 1;
            Mutex.unlock t.m;
            (match t.tracer with
            | Some tr when not (Obs.Span.is_zero ctx) ->
                ignore
                  (Obs.Tracer.record tr ~ctx ~stage:"replica_apply"
                     ~start_ns:t0 ~end_ns:(Obs.Tracer.now_ns ()))
            | _ -> ());
            Ok ())

  (* Every failure funnels into [resync]: transport errors, decode
     failures, epoch gaps. The loop only exits on close or when the resync
     budget marks the stream [`Broken]. *)
  let rec apply_loop t =
    if not t.closing then
      match current_conn t with
      | None -> if resync t "no connection" then apply_loop t
      | Some conn -> (
          match Conn.recv ~max_frame:t.max_frame conn with
          | Error `Timeout -> apply_loop t (* idle leader: keep waiting *)
          | Error e ->
              if (not t.closing) && resync t (Conn.recv_error_to_string e)
              then apply_loop t
          | Ok frame -> (
              match Frame.decode_push frame with
              | Error e ->
                  if resync t (Wire.Codec.error_to_string e) then apply_loop t
              | Ok (Frame.Snapshot { epoch; published; blob }) -> (
                  match apply_snapshot t ~epoch ~published ~blob with
                  | Ok () -> apply_loop t
                  | Error msg -> if resync t msg then apply_loop t)
              | Ok (Frame.Delta { epoch; weight; blob }) -> (
                  match apply_delta t ~epoch ~weight ~blob with
                  | Ok () -> apply_loop t
                  | Error msg -> if resync t msg then apply_loop t)))

  let query t f =
    Mutex.lock t.m;
    let r =
      match t.sketch with
      | Some sk -> Some (f sk, t.epoch)
      | None -> None
    in
    Mutex.unlock t.m;
    r

  let stats t =
    Mutex.lock t.m;
    let s =
      {
        epoch = t.epoch;
        published = t.published;
        deltas = t.deltas;
        skipped = t.skipped;
        resyncs = t.resyncs;
        last_break = t.last_break;
        status = t.st;
      }
    in
    Mutex.unlock t.m;
    s

  let published t = (stats t).published
  let epoch t = (stats t).epoch
  let status t = (stats t).status

  let status_code = function
    | `Syncing -> 0.
    | `Live -> 1.
    | `Resyncing _ -> 2.
    | `Broken _ -> 3.
    | `Closed -> 4.

  let connect ?(read_timeout = 1.0) ?(max_frame = Conn.default_max_frame)
      ?(resync_backoff = 0.05) ?max_resyncs ?metrics ?tracer ~host ~port () =
    let conn = Conn.connect ~host ~port in
    Conn.set_read_timeout conn read_timeout;
    let t =
      {
        host;
        port;
        read_timeout;
        max_frame;
        resync_backoff;
        max_resyncs = Option.value max_resyncs ~default:max_int;
        tracer;
        m = Mutex.create ();
        conn = Some conn;
        sketch = None;
        epoch = -1;
        published = 0;
        deltas = 0;
        skipped = 0;
        resyncs = 0;
        last_break = None;
        st = `Syncing;
        closing = false;
        apply_d = None;
      }
    in
    if not (Conn.send conn (Frame.encode_request (Frame.Subscribe { from_epoch = 0 })))
    then begin
      (* the apply domain's resync path picks the handshake back up *)
      Conn.close conn;
      t.conn <- None
    end;
    (match metrics with
    | None -> ()
    | Some reg ->
        let c name help f = Obs.Registry.counter_fn reg ~help name f in
        c "replica_resyncs_total" "Stream re-subscriptions after a break"
          (fun () -> (stats t).resyncs);
        c "replica_deltas_total" "Epoch deltas applied" (fun () ->
            (stats t).deltas);
        c "replica_skipped_total" "Duplicate epochs skipped" (fun () ->
            (stats t).skipped);
        let g name help f = Obs.Registry.gauge_fn reg ~help name f in
        g "replica_epoch" "Last applied epoch" (fun () ->
            float_of_int (stats t).epoch);
        g "replica_published" "Replicated published weight" (fun () ->
            float_of_int (stats t).published);
        g "replica_status"
          "0 syncing, 1 live, 2 resyncing, 3 broken, 4 closed" (fun () ->
            status_code (stats t).status));
    t.apply_d <- Some (Domain.spawn (fun () -> apply_loop t));
    t

  let wait_epoch ?(timeout = 10.0) t e =
    let deadline = Unix.gettimeofday () +. timeout in
    let rec go () =
      let s = stats t in
      if s.epoch >= e && s.status = `Live then true
      else if
        (match s.status with `Broken _ | `Closed -> true | _ -> false)
        || Unix.gettimeofday () > deadline
      then false
      else begin
        Unix.sleepf 0.002;
        go ()
      end
    in
    go ()

  let close t =
    Mutex.lock t.m;
    let already = t.closing in
    t.closing <- true;
    (match t.conn with Some c -> Conn.close c | None -> ());
    Mutex.unlock t.m;
    if not already then begin
      (match t.apply_d with Some d -> Domain.join d | None -> ());
      t.apply_d <- None;
      Mutex.lock t.m;
      (match t.st with `Broken _ -> () | _ -> t.st <- `Closed);
      Mutex.unlock t.m
    end
end
