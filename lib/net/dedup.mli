(** Bounded per-session batch dedup: the server half of effectively-once
    ingestion.

    A sender announces a session ({!Frame.Hello}) and numbers its batches
    sequentially; a retry resends the {e same} [(session, seq)]. The
    server asks {!begin_batch} before applying: [Fresh] means apply and
    ack, [Duplicate k] means the batch (or its journal record) was seen
    before — ack [k] with [dup = true] and do {e not} re-apply. This is
    what turns at-least-once retry into conservation-exact delivery:
    published weight equals the sum of acked counts under arbitrary
    connection drops.

    {2 Ordering rule}

    {!begin_batch} journals a fresh triple {e before} the caller applies
    the batch. A crash between journal and apply therefore suppresses the
    retry of a batch that never landed — bounded loss, never double
    application. The journal ([sessions.log] in [dir], standard
    {!Wire.Codec} frames, longest-valid-prefix recovery via
    {!Wire.Segment}) lets the window survive a WAL restart, so retries
    that span a server kill stay suppressed.

    {2 Bounds}

    Per session the window keeps the last [window] seqs (plus a
    high-water mark — seqs are emitted in order per sender, so anything
    at or below the mark that has left the ring is answered as a
    duplicate of its claimed size); at most [max_sessions] sessions are
    kept, LRU-evicted. Session [0L] opts out of dedup entirely. *)

type t

type outcome =
  | Fresh  (** Never seen: journaled; apply it, then {!record} the count. *)
  | Duplicate of int
      (** Seen before: ack this count with [dup = true], do not apply. *)

type stats = {
  sessions : int;  (** live sessions in the table *)
  duplicates : int;  (** batches suppressed *)
  journal_records : int;  (** records appended this incarnation *)
  journal_bytes : int;
  recovered_records : int;  (** records replayed from the journal *)
  compactions : int;  (** journal rewrites to the bounded snapshot *)
}

val create :
  ?window:int -> ?max_sessions:int -> ?compact_every:int -> ?dir:string ->
  unit -> t
(** [window] (default 128) recent seqs per session; [max_sessions]
    (default 1024) sessions, LRU-evicted. With [dir], the journal at
    [dir/sessions.log] is replayed (torn tail truncated) and then
    appended to, one flushed frame per fresh batch.

    The journal is append-only but the state it rebuilds is bounded, so
    it is compacted — rewritten (tmp file + rename) as at most [window]
    frames per live session, in arrival order — after every recovery
    that replayed records and then again every [compact_every] (default
    4096) appends. The file therefore stays within
    [window * max_sessions + compact_every] frames regardless of uptime.
    Session LRU stamps are not persisted: after a restart, eviction
    order among recovered sessions is approximate.
    @raise Invalid_argument on non-positive bounds. *)

val register : t -> session:int64 -> unit
(** Touch a session (the {!Frame.Hello} path) so it is warm in the LRU. *)

val begin_batch : t -> session:int64 -> seq:int -> count:int -> outcome
(** Classify a batch before applying it. [Fresh] is journaled with the
    claimed [count] as a provisional accepted value. *)

val record : t -> session:int64 -> seq:int -> accepted:int -> unit
(** Overwrite the provisional count with the engine's actual accepted
    count, so an in-incarnation duplicate ack is exact. *)

val stats : t -> stats

val close : t -> unit
(** Close the journal channel. Idempotent. *)
