(** The served tier's wire vocabulary: typed request/response/push frames
    on top of {!Wire.Codec}'s versioned, checksummed framing.

    Every frame on a connection is a standard IVLW blob (magic, version,
    kind tag, payload length, FNV-1a payload checksum), so the transport
    inherits the codec's guarantees: truncation, bit flips, version skew
    and foreign kinds all decode to a precise {!Wire.Codec.error} — never
    an exception — and a frame whose kind tag this build does not know at
    all surfaces as {!Wire.Codec.Unknown_kind}, which a server answers
    with a distinct "unsupported" error instead of a parse failure.

    Three frame families share one stream:
    - {e requests} (client → server): the {!Hello} session handshake,
      {!Batch} ingest, {!Query}, and the follower's {!Subscribe} handshake;
    - {e responses} (server → client): one {!response} frame per request —
      an {!Ack} for a batch or hello, a {!Result} for a query, an {!Err}
      otherwise;
    - {e pushes} (leader → follower): a {!Snapshot} seeding the follower,
      then one {!Delta} per merged epoch, in strict epoch order.

    Batches carry a [(session, seq)] identity so delivery is
    {e effectively once}: a sender announces its session with {!Hello},
    numbers its batches sequentially, and resends the {e same} [(session,
    seq)] on retry — the server's dedup window ({!Dedup}) then acks a
    retried batch without re-applying it, with [dup = true] in the
    {!Ack}. Session [0L] opts out (legacy at-least-once behaviour, kept
    for the pre-fix regression test). *)

type query =
  | Total  (** Published weight — served from the engine, sketch-agnostic. *)
  | Point of int  (** Frequency estimate for one key (countmin). *)
  | Quantile of float  (** Rank query, phi in [0,1] (quantiles sketch). *)
  | Top of int  (** Heaviest [n] keys with counts (space-saving). *)

type request =
  | Batch of {
      session : int64;
      seq : int;
      ctx : Obs.Span.context;
      keys : int array;
    }
      (** Update keys, applied in order. [(session, seq)] identifies the
          batch across retries; [session = 0L] means no dedup. [ctx] is
          the sampled trace context: {!Obs.Span.zero} (the common case)
          encodes as the legacy [net-batch] kind, byte-identical to the
          PR 8 wire schema; a nonzero context rides the [net-batch2]
          kind with trace id + parent span id after [seq]. *)
  | Query of query
  | Subscribe of { from_epoch : int }
      (** Replication handshake. [from_epoch] is reserved (send 0): the
          leader currently always seeds with a full snapshot. *)
  | Hello of { session : int64 }
      (** Session handshake: sent once per (re)connection before the first
          batch, answered with an {!Ack} of [accepted = 0]. Registers the
          session in the server's dedup window. *)

type err_code = Unsupported | Malformed | Overloaded | Internal

type response =
  | Ack of { epoch : int; accepted : int; dup : bool }
      (** Batch outcome: [accepted <= Array.length keys]; the difference
          was shed server-side (dead shard, drained engine). [dup] means
          the batch was recognized as a retry and {e not} re-applied —
          [accepted] then reports the original application's count. *)
  | Result of { epoch : int; pairs : (int * int) list }
      (** Query outcome at a published snapshot: [Total] and [Point k]
          return one pair, [Top n] up to [n] pairs, [Quantile phi] one
          pair [(0, estimate)]. *)
  | Err of { code : err_code; msg : string }

type push =
  | Snapshot of { epoch : int; published : int; blob : Bytes.t }
      (** The leader's encoded global sketch, consistent at [epoch]. *)
  | Delta of { epoch : int; weight : int; blob : Bytes.t }
      (** One merged shard delta. A follower applies it iff
          [epoch = local + 1] and skips [epoch <= local] (the handshake
          race); any gap invalidates the stream. *)

val err_code_to_string : err_code -> string
val query_to_string : query -> string

val encode_request : request -> Bytes.t
val decode_request : Bytes.t -> (request, Wire.Codec.error) result

val encode_response : response -> Bytes.t
val decode_response : Bytes.t -> (response, Wire.Codec.error) result

val encode_push : push -> Bytes.t
val decode_push : Bytes.t -> (push, Wire.Codec.error) result
