(** Histories: sequences of invocation and response events (Section 2.1).

    A history records the externally visible behaviour of an execution. Each
    operation appears as an invocation event, optionally followed by a
    matching response event; a query's return value lives on its response.
    This module provides the vocabulary the paper's definitions are stated
    in: well-formedness, the precedence partial order [≺_H], pending
    operations and their completions, the per-object projection [H|x] used by
    the locality theorem, the skeleton operator [H?], and conversions to and
    from sequential histories. *)

type dir = Inv | Rsp

type ('u, 'q, 'v) event = { dir : dir; op : ('u, 'q, 'v) Op.t }

type ('u, 'q, 'v) t
(** An immutable history. *)

(** {1 Construction} *)

val of_events : ('u, 'q, 'v) event list -> ('u, 'q, 'v) t
(** [of_events evs] packages an event sequence, in temporal order. No
    validation is performed; see {!well_formed}. *)

val inv : ('u, 'q, 'v) Op.t -> ('u, 'q, 'v) event
(** Invocation event for [op] (any return value on [op] is erased). *)

val rsp : ?ret:'v -> ('u, 'q, 'v) Op.t -> ('u, 'q, 'v) event
(** Response event for [op], carrying [ret] if it is a query. *)

val of_sequential_ops : ('u, 'q, 'v) Op.t list -> ('u, 'q, 'v) t
(** [of_sequential_ops ops] is the sequential history inv/rsp-alternating
    through [ops] in order. *)

(** {1 Accessors} *)

val events : ('u, 'q, 'v) t -> ('u, 'q, 'v) event list

val length : ('u, 'q, 'v) t -> int
(** Number of events. *)

val ops : ('u, 'q, 'v) t -> ('u, 'q, 'v) Op.t list
(** All operations in invocation order. A completed query carries its return
    value (taken from its response event); pending operations carry [None]. *)

val find_op : ('u, 'q, 'v) t -> int -> ('u, 'q, 'v) Op.t option
(** [find_op h id] looks an operation up by id. *)

val interval : ('u, 'q, 'v) t -> int -> (int * int option) option
(** [interval h id] is [Some (i, r)] where [i] is the index of the
    invocation event of operation [id] and [r] the index of its response (or
    [None] while pending); [None] if [id] does not occur in [h]. *)

val pending : ('u, 'q, 'v) t -> ('u, 'q, 'v) Op.t list
(** Operations invoked but not yet responded to. *)

val completed : ('u, 'q, 'v) t -> ('u, 'q, 'v) Op.t list
(** Operations that have both events, in invocation order. *)

(** {1 Structure} *)

val well_formed : ('u, 'q, 'v) t -> (unit, string) result
(** Checks the paper's well-formedness conditions: operation ids are unique,
    every response is preceded by the matching invocation, and no process has
    two operations in flight at once. The [Error] carries a human-readable
    reason. *)

val precedes : ('u, 'q, 'v) t -> int -> int -> bool
(** [precedes h id1 id2] is the real-time order [op1 ≺_H op2]: the response
    of [id1] occurs before the invocation of [id2]. Pending operations
    precede nothing. *)

val concurrent : ('u, 'q, 'v) t -> int -> int -> bool
(** Neither operation precedes the other. *)

val is_sequential : ('u, 'q, 'v) t -> bool
(** True iff the history alternates invocation / matching response, starting
    with an invocation (Section 2.1). *)

val sequential_ops : ('u, 'q, 'v) t -> ('u, 'q, 'v) Op.t list option
(** [Some ops] iff {!is_sequential}; the operations in order. *)

(** {1 Operators from the paper} *)

val skeleton : ('u, 'q, 'v) t -> ('u, 'q, 'v) t
(** The [H?] operator: every response value replaced by "?" ([None]). *)

val project : ('u, 'q, 'v) t -> obj:int -> ('u, 'q, 'v) t
(** [project h ~obj] is [H|x]: the sub-history of events on object [obj]. *)

val objects : ('u, 'q, 'v) t -> int list
(** Distinct object ids appearing in [h], ascending. *)

val complete : ?keep_pending_updates:bool -> ('u, 'q, 'v) t -> ('u, 'q, 'v) t
(** [complete h] removes pending queries and, when [keep_pending_updates]
    (default [true]), appends responses for pending updates — the canonical
    completion used in the proof of Lemma 10. With
    [~keep_pending_updates:false] pending updates are removed instead. *)

val append : ('u, 'q, 'v) t -> ('u, 'q, 'v) event -> ('u, 'q, 'v) t

val pp :
  pp_u:(Format.formatter -> 'u -> unit) ->
  pp_q:(Format.formatter -> 'q -> unit) ->
  pp_v:(Format.formatter -> 'v -> unit) ->
  Format.formatter ->
  ('u, 'q, 'v) t ->
  unit
(** One event per line, ["inv  p0:x0:update(3)#1"] style. *)
