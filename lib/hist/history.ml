type dir = Inv | Rsp

type ('u, 'q, 'v) event = { dir : dir; op : ('u, 'q, 'v) Op.t }

type ('u, 'q, 'v) t = { evs : ('u, 'q, 'v) event array }

let of_events evs = { evs = Array.of_list evs }

let inv op = { dir = Inv; op = Op.erase_return op }

let rsp ?ret op =
  let op = match ret with None -> op | Some v -> Op.with_return op v in
  { dir = Rsp; op }

let of_sequential_ops ops =
  of_events (List.concat_map (fun op -> [ inv op; { dir = Rsp; op } ]) ops)

let events h = Array.to_list h.evs

let length h = Array.length h.evs

(* The operation record exposed for an id merges the invocation (argument)
   with the response (return value) when the latter exists. *)
let ops h =
  let tbl = Hashtbl.create 16 in
  let order = ref [] in
  Array.iter
    (fun ev ->
      match ev.dir with
      | Inv ->
          if not (Hashtbl.mem tbl ev.op.Op.id) then begin
            Hashtbl.replace tbl ev.op.Op.id ev.op;
            order := ev.op.Op.id :: !order
          end
      | Rsp -> Hashtbl.replace tbl ev.op.Op.id ev.op)
    h.evs;
  List.rev_map (fun id -> Hashtbl.find tbl id) !order

let find_op h id = List.find_opt (fun op -> op.Op.id = id) (ops h)

let interval h id =
  let inv_ix = ref None and rsp_ix = ref None in
  Array.iteri
    (fun i ev ->
      if ev.op.Op.id = id then
        match ev.dir with
        | Inv -> if !inv_ix = None then inv_ix := Some i
        | Rsp -> if !rsp_ix = None then rsp_ix := Some i)
    h.evs;
  match !inv_ix with None -> None | Some i -> Some (i, !rsp_ix)

let pending h =
  List.filter
    (fun op ->
      match interval h op.Op.id with Some (_, None) -> true | _ -> false)
    (ops h)

let completed h =
  List.filter
    (fun op ->
      match interval h op.Op.id with Some (_, Some _) -> true | _ -> false)
    (ops h)

let well_formed h =
  let ( let* ) r f = match r with Error _ as e -> e | Ok x -> f x in
  (* Each id: exactly one Inv, at most one Rsp, Inv before Rsp. *)
  let check_ids () =
    let seen_inv = Hashtbl.create 16 and seen_rsp = Hashtbl.create 16 in
    let err = ref None in
    Array.iter
      (fun ev ->
        let id = ev.op.Op.id in
        match ev.dir with
        | Inv ->
            if Hashtbl.mem seen_inv id then
              err := Some (Printf.sprintf "duplicate invocation of op #%d" id)
            else Hashtbl.replace seen_inv id ()
        | Rsp ->
            if not (Hashtbl.mem seen_inv id) then
              err := Some (Printf.sprintf "response of op #%d precedes its invocation" id)
            else if Hashtbl.mem seen_rsp id then
              err := Some (Printf.sprintf "duplicate response of op #%d" id)
            else Hashtbl.replace seen_rsp id ())
      h.evs;
    match !err with None -> Ok () | Some m -> Error m
  in
  (* No process runs two operations concurrently. *)
  let check_procs () =
    let in_flight = Hashtbl.create 8 in
    let err = ref None in
    Array.iter
      (fun ev ->
        let p = ev.op.Op.proc in
        match ev.dir with
        | Inv ->
            (match Hashtbl.find_opt in_flight p with
            | Some other ->
                err :=
                  Some
                    (Printf.sprintf
                       "process %d invokes op #%d while op #%d is in flight" p
                       ev.op.Op.id other)
            | None -> Hashtbl.replace in_flight p ev.op.Op.id)
        | Rsp ->
            (match Hashtbl.find_opt in_flight p with
            | Some id when id = ev.op.Op.id -> Hashtbl.remove in_flight p
            | _ ->
                err :=
                  Some
                    (Printf.sprintf "process %d responds to op #%d it is not running" p
                       ev.op.Op.id)))
      h.evs;
    match !err with None -> Ok () | Some m -> Error m
  in
  let* () = check_ids () in
  check_procs ()

let precedes h id1 id2 =
  match (interval h id1, interval h id2) with
  | Some (_, Some r1), Some (i2, _) -> r1 < i2
  | _ -> false

let concurrent h id1 id2 = (not (precedes h id1 id2)) && not (precedes h id2 id1)

let is_sequential h =
  let n = Array.length h.evs in
  if n mod 2 <> 0 then false
  else
    let ok = ref true in
    let i = ref 0 in
    while !ok && !i < n do
      let a = h.evs.(!i) and b = h.evs.(!i + 1) in
      if not (a.dir = Inv && b.dir = Rsp && a.op.Op.id = b.op.Op.id) then ok := false;
      i := !i + 2
    done;
    !ok

let sequential_ops h =
  if not (is_sequential h) then None
  else
    let rec collect i acc =
      if i >= Array.length h.evs then List.rev acc
      else collect (i + 2) (h.evs.(i + 1).op :: acc)
    in
    Some (collect 0 [])

let skeleton h =
  { evs = Array.map (fun ev -> { ev with op = Op.erase_return ev.op }) h.evs }

let project h ~obj =
  { evs = Array.of_seq (Seq.filter (fun ev -> ev.op.Op.obj = obj) (Array.to_seq h.evs)) }

let objects h =
  List.sort_uniq compare (List.map (fun op -> op.Op.obj) (ops h))

let complete ?(keep_pending_updates = true) h =
  let pend = pending h in
  let is_pending id = List.exists (fun op -> op.Op.id = id) pend in
  let keep ev =
    if not (is_pending ev.op.Op.id) then true
    else Op.is_update ev.op && keep_pending_updates
  in
  let kept = List.filter keep (events h) in
  let completions =
    if keep_pending_updates then
      List.filter_map
        (fun op -> if Op.is_update op then Some { dir = Rsp; op } else None)
        pend
    else []
  in
  of_events (kept @ completions)

let append h ev = { evs = Array.append h.evs [| ev |] }

let pp ~pp_u ~pp_q ~pp_v ppf h =
  Array.iter
    (fun ev ->
      let tag = match ev.dir with Inv -> "inv" | Rsp -> "rsp" in
      Format.fprintf ppf "%s  %a@." tag (Op.pp ~pp_u ~pp_q ~pp_v) ev.op)
    h.evs
