type ('u, 'q) kind = Update of 'u | Query of 'q

type ('u, 'q, 'v) t = {
  id : int;
  proc : int;
  obj : int;
  kind : ('u, 'q) kind;
  ret : 'v option;
}

let is_query op = match op.kind with Query _ -> true | Update _ -> false

let is_update op = not (is_query op)

let erase_return op = { op with ret = None }

let with_return op v =
  match op.kind with
  | Query _ -> { op with ret = Some v }
  | Update _ -> invalid_arg "Op.with_return: updates do not return values"

let pp ~pp_u ~pp_q ~pp_v ppf op =
  let pp_ret ppf = function
    | None -> Format.fprintf ppf "?"
    | Some v -> pp_v ppf v
  in
  match op.kind with
  | Update u -> Format.fprintf ppf "p%d:x%d:update(%a)#%d" op.proc op.obj pp_u u op.id
  | Query q ->
      Format.fprintf ppf "p%d:x%d:query(%a)->%a#%d" op.proc op.obj pp_q q pp_ret op.ret
        op.id
