(** ASCII interval diagrams of histories — Figure 2 of the paper, as text.

    One row per process, one column per event slot; operations render as
    [|--label--|] intervals, pending operations as [|--label--…]. Used by
    the CLI and examples to show executions the way the paper draws them:

    {v
    p0: |-u(5)-|
    p1:         |-u(2)-|
    p2: |------r->2--------|
    v} *)

val render :
  pp_u:(Format.formatter -> 'u -> unit) ->
  pp_q:(Format.formatter -> 'q -> unit) ->
  pp_v:(Format.formatter -> 'v -> unit) ->
  ('u, 'q, 'v) History.t ->
  string
(** Multi-line diagram; event index = horizontal position, so overlap in the
    picture is exactly concurrency in the history. *)

val render_int : (int, int, int) History.t -> string
(** {!render} specialized to the int-typed histories the machine and the
    test helpers produce. *)
