(** Operations of quantitative objects.

    Following Section 3.1 of the paper, a {e quantitative object} supports
    two kinds of operations: [update], which mutates the object and returns
    nothing, and [query], which returns a value from a totally ordered
    domain. An operation instance is identified by a unique [id], is invoked
    by a process [proc], and targets an object [obj] (multiple objects in one
    history are what the locality theorem, Theorem 1, is about). *)

type ('u, 'q) kind =
  | Update of 'u  (** a mutating operation carrying its argument *)
  | Query of 'q  (** a read-only operation carrying its argument *)

type ('u, 'q, 'v) t = {
  id : int;  (** unique within a history *)
  proc : int;  (** invoking process *)
  obj : int;  (** target object (for multi-object histories) *)
  kind : ('u, 'q) kind;
  ret : 'v option;
      (** [Some v] iff this is a query that returned [v]; [None] for updates
          and for queries whose return value has been erased (skeletons,
          Section 3.1) or that are still pending *)
}

val is_query : ('u, 'q, 'v) t -> bool
val is_update : ('u, 'q, 'v) t -> bool

val erase_return : ('u, 'q, 'v) t -> ('u, 'q, 'v) t
(** [erase_return op] is [op] with [ret = None] — the per-operation part of
    the [H?] skeleton operator. *)

val with_return : ('u, 'q, 'v) t -> 'v -> ('u, 'q, 'v) t
(** [with_return op v] sets the return value of a query.
    @raise Invalid_argument if [op] is an update. *)

val pp :
  pp_u:(Format.formatter -> 'u -> unit) ->
  pp_q:(Format.formatter -> 'q -> unit) ->
  pp_v:(Format.formatter -> 'v -> unit) ->
  Format.formatter ->
  ('u, 'q, 'v) t ->
  unit
