(* Each event occupies [cell] characters of horizontal space; an operation's
   interval spans from its invocation column to its response column (or the
   right margin while pending). Labels are centered in the interval and
   truncated when the interval is too narrow. *)

let cell = 4

let label_of ~pp_u ~pp_q ~pp_v (op : ('u, 'q, 'v) Op.t) =
  match op.Op.kind with
  | Op.Update u -> Format.asprintf "u(%a)" pp_u u
  | Op.Query q -> (
      match op.Op.ret with
      | Some v -> Format.asprintf "q(%a)->%a" pp_q q pp_v v
      | None -> Format.asprintf "q(%a)->?" pp_q q)

let render ~pp_u ~pp_q ~pp_v h =
  let events = History.events h in
  let n_events = List.length events in
  if n_events = 0 then "(empty history)"
  else begin
    let procs = List.sort_uniq compare (List.map (fun op -> op.Op.proc) (History.ops h)) in
    let width = n_events * cell in
    let rows = List.map (fun p -> (p, Bytes.make width ' ')) procs in
    let row p = List.assoc p rows in
    List.iter
      (fun op ->
        match History.interval h op.Op.id with
        | None -> ()
        | Some (inv_ix, rsp_ix) ->
            let left = inv_ix * cell in
            let right, pending =
              match rsp_ix with
              | Some r -> (((r + 1) * cell) - 1, false)
              | None -> (width - 1, true)
            in
            let buf = row op.Op.proc in
            Bytes.set buf left '|';
            if pending then Bytes.set buf right '~' else Bytes.set buf right '|';
            for i = left + 1 to right - 1 do
              Bytes.set buf i '-'
            done;
            let label = label_of ~pp_u ~pp_q ~pp_v op in
            let space = right - left - 1 in
            let label =
              if String.length label <= space then label
              else if space > 1 then String.sub label 0 space
              else ""
            in
            let start = left + 1 + ((space - String.length label) / 2) in
            String.iteri (fun i c -> Bytes.set buf (start + i) c) label)
      (History.ops h);
    rows
    |> List.map (fun (p, buf) -> Printf.sprintf "p%d: %s" p (Bytes.to_string buf))
    |> String.concat "\n"
  end

let render_int h =
  let pp = Format.pp_print_int in
  render ~pp_u:pp ~pp_q:pp ~pp_v:pp h
