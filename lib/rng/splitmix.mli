(** SplitMix64 pseudo-random number generator.

    A small, fast, splittable PRNG with a 64-bit state, suitable for seeding
    other generators and for reproducible experiments. The implementation
    follows Steele, Lea and Flood, "Fast splittable pseudorandom number
    generators" (OOPSLA 2014). All experiment code in this repository derives
    its randomness from explicitly seeded generators so that every run is
    reproducible; [Stdlib.Random] is never used on core paths. *)

type t
(** Mutable generator state. *)

val create : int64 -> t
(** [create seed] returns a fresh generator seeded with [seed]. Two
    generators created with the same seed produce identical streams. *)

val copy : t -> t
(** [copy g] is an independent generator whose future outputs equal those
    of [g] at the moment of the copy. *)

val next_int64 : t -> int64
(** [next_int64 g] advances [g] and returns 64 uniformly distributed bits. *)

val next_int : t -> int -> int
(** [next_int g bound] returns a uniform integer in [\[0, bound)].
    @raise Invalid_argument if [bound <= 0]. *)

val next_float : t -> float
(** [next_float g] returns a uniform float in [\[0, 1)]. *)

val next_bool : t -> bool
(** [next_bool g] returns a uniform boolean. *)

val split : t -> t
(** [split g] advances [g] and returns a new generator whose stream is
    (computationally) independent of the remainder of [g]'s stream. *)
