(** PCG32 pseudo-random number generator.

    The PCG-XSH-RR 64/32 generator of O'Neill ("PCG: A family of simple fast
    space-efficient statistically good algorithms for random number
    generation", 2014). Used where a second, structurally different PRNG is
    wanted (e.g. to decorrelate workload generation from hash-seed
    generation). *)

type t
(** Mutable generator state (64-bit state, 64-bit odd stream selector). *)

val create : ?stream:int64 -> int64 -> t
(** [create ?stream seed] seeds a generator. Distinct [stream] values yield
    independent sequences for the same [seed]. *)

val next_int32 : t -> int32
(** [next_int32 g] returns 32 uniform bits. *)

val next_int : t -> int -> int
(** [next_int g bound] returns a uniform integer in [\[0, bound)].
    @raise Invalid_argument if [bound <= 0]. *)

val next_float : t -> float
(** [next_float g] returns a uniform float in [\[0, 1)]. *)
