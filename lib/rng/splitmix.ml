type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = seed }

let copy g = { state = g.state }

(* The finalization mix of MurmurHash3, as used by SplitMix64. *)
let mix64 z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let next_int64 g =
  g.state <- Int64.add g.state golden_gamma;
  mix64 g.state

let next_int g bound =
  if bound <= 0 then invalid_arg "Splitmix.next_int: bound must be positive";
  (* Rejection sampling over the low 62 bits to avoid modulo bias. *)
  let mask = 0x3FFF_FFFF_FFFF_FFFFL in
  let rec loop () =
    let bits = Int64.to_int (Int64.logand (next_int64 g) mask) in
    let v = bits mod bound in
    if bits - v + (bound - 1) < 0 then loop () else v
  in
  loop ()

let next_float g =
  (* 53 high-quality bits -> [0,1). *)
  let bits = Int64.shift_right_logical (next_int64 g) 11 in
  Int64.to_float bits *. (1.0 /. 9007199254740992.0)

let next_bool g = Int64.logand (next_int64 g) 1L = 1L

let split g =
  let seed = next_int64 g in
  { state = mix64 seed }
