(** Common probability distributions over a {!Splitmix.t} source. *)

val uniform_int : Splitmix.t -> int -> int
(** [uniform_int g n] is uniform on [\[0, n)]. *)

val bernoulli : Splitmix.t -> float -> bool
(** [bernoulli g p] is [true] with probability [p]. *)

val geometric : Splitmix.t -> float -> int
(** [geometric g p] is the number of failures before the first success of a
    Bernoulli([p]) sequence; [p] must lie in (0, 1]. *)

val exponential : Splitmix.t -> float -> float
(** [exponential g lambda] samples Exp([lambda]). *)

val shuffle : Splitmix.t -> 'a array -> unit
(** [shuffle g a] permutes [a] in place, uniformly (Fisher–Yates). *)

val sample_without_replacement : Splitmix.t -> int -> int -> int array
(** [sample_without_replacement g k n] draws [k] distinct integers from
    [\[0, n)], in random order.
    @raise Invalid_argument if [k > n] or [k < 0]. *)
