type t = { mutable state : int64; inc : int64 }

let multiplier = 6364136223846793005L

let step g = g.state <- Int64.(add (mul g.state multiplier) g.inc)

let create ?(stream = 0x14057B7EF767814FL) seed =
  (* The increment must be odd; fold the stream selector to guarantee it. *)
  let inc = Int64.logor (Int64.shift_left stream 1) 1L in
  let g = { state = 0L; inc } in
  step g;
  g.state <- Int64.add g.state seed;
  step g;
  g

let next_int32 g =
  let old = g.state in
  step g;
  let xorshifted =
    Int64.to_int32
      (Int64.shift_right_logical (Int64.logxor (Int64.shift_right_logical old 18) old) 27)
  in
  let rot = Int64.to_int (Int64.shift_right_logical old 59) in
  let open Int32 in
  logor (shift_right_logical xorshifted rot) (shift_left xorshifted (-rot land 31))

let next_int g bound =
  if bound <= 0 then invalid_arg "Pcg.next_int: bound must be positive";
  let rec loop () =
    let bits = Int32.to_int (next_int32 g) land 0x7FFFFFFF in
    let v = bits mod bound in
    if bits - v + (bound - 1) < 0 then loop () else v
  in
  loop ()

let next_float g =
  let hi = Int32.to_int (next_int32 g) land 0x3FFFFFF in
  let lo = Int32.to_int (next_int32 g) land 0x7FFFFFF in
  ((float_of_int hi *. 134217728.0) +. float_of_int lo) /. 9007199254740992.0
