let uniform_int g n = Splitmix.next_int g n

let bernoulli g p = Splitmix.next_float g < p

let geometric g p =
  if p <= 0.0 || p > 1.0 then invalid_arg "Dist.geometric: p must lie in (0,1]";
  if p = 1.0 then 0
  else
    let u = Splitmix.next_float g in
    (* Inverse CDF: floor(log(1-u) / log(1-p)). *)
    int_of_float (Float.of_int 0 +. floor (log1p (-.u) /. log1p (-.p)))

let exponential g lambda =
  if lambda <= 0.0 then invalid_arg "Dist.exponential: lambda must be positive";
  -.log1p (-.Splitmix.next_float g) /. lambda

let shuffle g a =
  for i = Array.length a - 1 downto 1 do
    let j = Splitmix.next_int g (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let sample_without_replacement g k n =
  if k < 0 || k > n then invalid_arg "Dist.sample_without_replacement";
  (* Partial Fisher-Yates over an index table. *)
  let tbl = Hashtbl.create (2 * k) in
  let get i = match Hashtbl.find_opt tbl i with Some v -> v | None -> i in
  Array.init k (fun i ->
      let j = i + Splitmix.next_int g (n - i) in
      let vi = get i and vj = get j in
      Hashtbl.replace tbl j vi;
      Hashtbl.replace tbl i vj;
      vj)
