(** Wait-free atomic snapshot from SWMR registers (Afek, Attiya, Dolev,
    Gafni, Merritt, Shavit — JACM 1993) and the linearizable batched counter
    built on it.

    A scan double-collects until two collects agree on every sequence number
    (a clean scan) or some process is observed moving twice, whose embedded
    view — obtained by a scan nested inside this scan's interval — is then
    borrowed. An update scans, then writes (contribution, seq+1, view).
    Because scans are atomic, summing a scanned view is a {e linearizable}
    counter read, and the update's embedded scan is what makes its step
    complexity Ω(n) (Theorem 14's bound made visible; this implementation is
    O(n²) worst-case).

    Register encoding: [\[| contribution; seq; view_0 … view_{n−1} |\]]. *)

val scan : base:int -> n:int -> (int array -> 'r Program.t) -> 'r Program.t
(** [scan ~base ~n k] collects a consistent view of all [n] contributions
    and passes it to [k]. *)

val registers : n:int -> Machine.reg_spec array
(** [n] SWMR registers, register [i] owned by process [i]. *)

val update_prog : base:int -> n:int -> proc:int -> amount:int -> unit Program.t
(** Add [amount] to [proc]'s contribution through the update protocol. *)

val read_prog : base:int -> n:int -> int Program.t
(** Scan and sum: the linearizable counter read. *)

val impl : n:int -> Algos.counter_impl
(** Package as a pluggable counter (for Algorithm 3). *)

val update_op : ?obj:int -> n:int -> proc:int -> amount:int -> unit -> Machine.operation
val read_op : ?obj:int -> n:int -> unit -> Machine.operation
