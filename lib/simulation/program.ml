(** Programs for the simulated shared-memory machine.

    The paper's complexity results (Theorems 11 and 14) are statements about
    {e steps} — accesses to atomic shared registers — in the standard shared
    memory model (Section 2.1). Measuring them honestly requires a machine
    where a step is an explicit, countable event; this continuation-based DSL
    is that machine's instruction set. Local computation happens inside the
    OCaml closures between instructions and is free, exactly as in the model.

    Register values are small integer arrays, so one register can hold the
    structured tuples (value, sequence number, embedded view) that snapshot
    algorithms write atomically. A register access costs one step regardless
    of the array's width — the model's registers are atomic whatever their
    word size.

    [Faa] is a fetch-and-add read-modify-write on cell 0 of a register. It is
    {e stronger} than a SWMR register — the machine only permits it on
    registers declared multi-writer — and exists so the simulator can also
    run PCM (whose Algorithm 1 atomically increments shared counters) and
    hardware-flavoured baselines. The Ω(n) lower bound experiment uses only
    SWMR reads and writes, as Theorem 14 requires. *)

type 'r t =
  | Done of 'r  (** return from the operation *)
  | Read of int * (int array -> 'r t)  (** one shared-memory read step *)
  | Write of int * int array * 'r t  (** one shared-memory write step *)
  | Faa of int * int * (int -> 'r t)
      (** fetch-and-add on cell 0: one read-modify-write step, returns the
          previous value *)

let return v = Done v

let read r k = Read (r, k)

let write r v next = Write (r, v, next)

let faa r delta k = Faa (r, delta, k)

(* Read registers [base .. base+n-1] in order, passing the collected values
   (cell 0 of each) to the continuation. *)
let collect_ints ~base ~n k =
  let values = Array.make n 0 in
  let rec go i =
    if i >= n then k values
    else
      Read
        ( base + i,
          fun v ->
            values.(i) <- v.(0);
            go (i + 1) )
  in
  go 0

(* Read whole register contents [base .. base+n-1]. *)
let collect ~base ~n k =
  let values = Array.make n [||] in
  let rec go i =
    if i >= n then k values
    else
      Read
        ( base + i,
          fun v ->
            values.(i) <- v;
            go (i + 1) )
  in
  go 0

(* Sequential composition: run [p], feed its result to [f]. *)
let rec bind p f =
  match p with
  | Done v -> f v
  | Read (r, k) -> Read (r, fun v -> bind (k v) f)
  | Write (r, v, next) -> Write (r, v, bind next f)
  | Faa (r, d, k) -> Faa (r, d, fun v -> bind (k v) f)

let ( let* ) = bind
