(** The simulated shared-memory machine.

    Runs a set of processes, each executing a script of operations written in
    the {!Program} DSL, over a bank of atomic registers, under a pluggable
    {!Sched} schedule. Produces the execution's history (for the checkers)
    and per-operation step counts (for the complexity experiments E1/E2).

    Single-writer ownership is enforced: writing a register declared
    [Swmr p] from any process other than [p], or applying [Faa] to a
    non-[Mwmr] register, raises {!Protocol_violation} — the simulator
    refuses to run algorithms outside their declared model, which is what
    makes the Ω(n) measurements meaningful. *)

type reg_kind =
  | Swmr of int  (** single writer: the named process *)
  | Mwmr  (** multi-writer; also permits [Faa] *)

type reg_spec = { kind : reg_kind; init : int array }

val reg : ?init:int array -> reg_kind -> reg_spec
(** A register with initial contents [init] (default [\[|0|\]]). *)

type operation = {
  obj : int;  (** object id in the produced history *)
  kind : (int, int) Hist.Op.kind;  (** update/query with its argument *)
  label : string;  (** grouping key for step statistics *)
  code : unit -> int option Program.t;
      (** fresh program; must yield [Some v] iff the operation is a query *)
}

val update_op : ?obj:int -> label:string -> arg:int -> (unit -> unit Program.t) -> operation
(** Wrap an update program (its [unit] return becomes [None]). *)

val query_op : ?obj:int -> label:string -> arg:int -> (unit -> int Program.t) -> operation
(** Wrap a query program (its [int] return becomes [Some _]). *)

exception Protocol_violation of string

type op_stats = {
  op_id : int;
  label : string;
  proc : int;
  steps : int;  (** shared-memory accesses this operation performed *)
}

type result = {
  history : (int, int, int) Hist.History.t;
  stats : op_stats list;  (** completion order *)
  crashed : int list;
      (** processes retired by a {!Fault.plan}; their in-flight operation
          (if any) is pending in [history] and their unreached script
          suffix was abandoned. Empty without fault injection. *)
}

val run :
  ?max_steps:int ->
  ?faults:Fault.plan ->
  registers:reg_spec array ->
  scripts:operation list array ->
  sched:Sched.t ->
  unit ->
  result
(** Execute until every script is exhausted or abandoned to a crash.
    [scripts.(p)] is process [p]'s operation sequence; invoking an operation
    coincides with its first step. [faults] (default none) injects
    crash-stop / freeze adversaries on top of [sched]; a crashed process
    permanently leaves the runnable set with its in-flight operation left
    pending in the history, feeding the checkers' completion search.
    @raise Protocol_violation on model violations or when an operation's
    return shape contradicts its kind.
    @raise Failure when [max_steps] (default 10^7) is exceeded. *)

val run_traced :
  ?max_steps:int ->
  ?faults:Fault.plan ->
  registers:reg_spec array ->
  scripts:operation list array ->
  sched:Sched.t ->
  unit ->
  result * int list
(** Like {!run}, also returning the sequence of scheduler choices actually
    taken. Replaying the trace as [Sched.Explicit] (same scripts, same
    faults) reproduces the execution exactly — the raw material
    {!Shrink.minimize} delta-debugs into a minimal repro. *)

type progress_audit = {
  audit_crashed : int list;  (** crashed processes (copied from the result) *)
  surviving_ops : int;  (** completed operations by surviving processes *)
  abandoned : int;  (** operations left pending by crashes *)
  max_op_steps : int;  (** worst per-operation step count among survivors *)
}

val audit_progress :
  ?step_bound:int -> result -> (progress_audit, string) Stdlib.result
(** Empirical wait-freedom check for a (possibly fault-injected) run: every
    operation by a surviving process must have completed — a pending
    operation is tolerated only on a crashed process — and no surviving
    operation may exceed [step_bound] steps (default unbounded). The [Error]
    names the offending operation. *)

val steps_by_label : result -> (string * int list) list
(** Step counts grouped by operation label (sorted by label), e.g. all the
    "update" operations' costs across processes. *)

val explore :
  ?max_histories:int ->
  ?max_steps:int ->
  registers:reg_spec array ->
  scripts:(unit -> operation list array) ->
  unit ->
  (int, int, int) Hist.History.t list
(** Exhaustive schedule exploration — model checking in the small: run the
    scripts under {e every} possible schedule (all interleavings of process
    steps) and return the distinct histories produced. [scripts] is a thunk
    because operations carry closures with per-run local state. Exponential
    in the total step count; guarded by [max_histories] (default 100_000 —
    exceeding it raises [Failure]). Tests use this to verify Lemma 7 / Lemma
    10 over {e all} schedules of small configurations, not a sample. *)
