(** Simulated implementations of the paper's counter algorithms and PCM.

    Everything here is expressed in the {!Program} instruction set so the
    machine can count steps and extract histories. Register banks are laid
    out by the [registers] functions; operations are built per process. *)

(** A batched-counter implementation usable as a building block (Algorithm 3
    plugs one in): its register bank, and program fragments for updating and
    reading. *)
type counter_impl = {
  registers : Machine.reg_spec array;
  update_prog : proc:int -> amount:int -> unit Program.t;
  read_prog : unit -> int Program.t;
  impl_name : string;
}

(** {1 The IVL batched counter — Algorithm 2}

    Register [i] (SWMR, owner [i]) holds process [i]'s accumulated batches.
    update: read own register, write the sum back — 2 steps, O(1).
    read: collect all [n] registers and sum — n steps, O(n).
    (Theorem 11.) *)
module Ivl_counter = struct
  let registers ~n = Array.init n (fun i -> Machine.reg (Machine.Swmr i))

  let update_prog ~base ~proc ~amount =
    Program.read (base + proc) (fun mine ->
        Program.write (base + proc) [| mine.(0) + amount |] (Program.return ()))

  let read_prog ~base ~n =
    Program.collect_ints ~base ~n (fun values ->
        Program.return (Array.fold_left ( + ) 0 values))

  let impl ~n =
    {
      registers = registers ~n;
      update_prog = (fun ~proc ~amount -> update_prog ~base:0 ~proc ~amount);
      read_prog = (fun () -> read_prog ~base:0 ~n);
      impl_name = "ivl-swmr";
    }

  let update_op ?obj ~proc ~amount () =
    Machine.update_op ?obj ~label:"update" ~arg:amount (fun () ->
        update_prog ~base:0 ~proc ~amount)

  let read_op ?obj ~n () =
    Machine.query_op ?obj ~label:"read" ~arg:0 (fun () -> read_prog ~base:0 ~n)
end

(** {1 A linearizable counter from fetch-and-add}

    One MWMR register updated with [Faa]: linearizable and O(1), but built
    from a primitive strictly stronger than SWMR registers — the contrast
    the end of Section 6 draws. Also the "hardware" counter that Algorithm 3
    tests plug in when they want the binary-snapshot logic isolated from the
    snapshot counter's complexity. *)
module Faa_counter = struct
  let registers = [| Machine.reg Machine.Mwmr |]

  let update_prog ~base ~amount =
    Program.faa base amount (fun _ -> Program.return ())

  let read_prog ~base = Program.read base (fun v -> Program.return v.(0))

  let impl =
    {
      registers;
      update_prog = (fun ~proc:_ ~amount -> update_prog ~base:0 ~amount);
      read_prog = (fun () -> read_prog ~base:0);
      impl_name = "faa";
    }

  let update_op ?obj ~amount () =
    Machine.update_op ?obj ~label:"update" ~arg:amount (fun () ->
        update_prog ~base:0 ~amount)

  let read_op ?obj () =
    Machine.query_op ?obj ~label:"read" ~arg:0 (fun () -> read_prog ~base:0)
end

(** {1 Simulated PCM — Algorithm 1 with concurrent invocations}

    A d×w bank of MWMR counters incremented with [Faa] (line 5) and read
    plainly (line 9). The hash functions are supplied as an explicit mapping
    so tests can pin collisions (Example 9). *)
module Pcm_sim = struct
  type t = {
    d : int;
    w : int;
    base : int;
    hash : int -> int -> int; (* row -> element -> column *)
  }

  let make ?(base = 0) ~d ~w ~hash () = { d; w; base; hash }

  let registers t ~initial =
    Array.init (t.d * t.w) (fun ix ->
        Machine.reg ~init:[| initial ix |] Machine.Mwmr)

  let zero_registers t = registers t ~initial:(fun _ -> 0)

  let cell t row col = t.base + (row * t.w) + col

  let update_prog t a =
    let rec rows i =
      if i >= t.d then Program.return ()
      else Program.faa (cell t i (t.hash i a)) 1 (fun _ -> rows (i + 1))
    in
    rows 0

  let query_prog t a =
    let rec rows i best =
      if i >= t.d then Program.return best
      else
        Program.read (cell t i (t.hash i a)) (fun v -> rows (i + 1) (min best v.(0)))
    in
    rows 0 max_int

  let update_op ?obj t ~a () =
    Machine.update_op ?obj ~label:"update" ~arg:a (fun () -> update_prog t a)

  let query_op ?obj t ~a () =
    Machine.query_op ?obj ~label:"query" ~arg:a (fun () -> query_prog t a)
end

(** {1 An IVL max register}

    The same single-writer recipe as Algorithm 2 applied to a different
    monotone quantitative object: register [i] holds the largest value
    process [i] has written; a read returns the maximum over all registers.
    update is O(1), read O(n), and reads are IVL against [Spec.Max_spec] —
    used by tests to show the counter construction is an instance of a
    pattern, not a one-off. *)
module Ivl_max = struct
  let registers ~n = Array.init n (fun i -> Machine.reg (Machine.Swmr i))

  let update_prog ~base ~proc ~value =
    Program.read (base + proc) (fun mine ->
        if mine.(0) >= value then Program.return ()
        else Program.write (base + proc) [| value |] (Program.return ()))

  let read_prog ~base ~n =
    Program.collect_ints ~base ~n (fun values ->
        Program.return (Array.fold_left max 0 values))

  let update_op ?obj ~proc ~value () =
    Machine.update_op ?obj ~label:"update" ~arg:value (fun () ->
        update_prog ~base:0 ~proc ~value)

  let read_op ?obj ~n () =
    Machine.query_op ?obj ~label:"read" ~arg:0 (fun () -> read_prog ~base:0 ~n)
end

(** {1 The Section 3.4 separation, materialized}

    An up/down counter built from two monotone cells: increments accumulate
    in one MWMR register, decrement magnitudes in another, and a read
    subtracts. The {e order} of the two reads decides correctness:

    - [read_buggy] reads increments first. A paired inc;dec completing
      between its two reads is seen only through the decrement — the
      "query sees a subset of the concurrent updates" behaviour that
      regular-like semantics permit — and the returned value drops below
      {e every} linearization. Not IVL; the checker catches it.
    - [read_safe] reads decrements first. The value it returns equals
      i(t_read2) − d(t_read1), which is realized by an actual linearization
      (order every increment applied by the second read before the query,
      and every decrement applied after the first read behind it), so the
      execution stays IVL.

    This is the paper's §3.4 argument as a failure-injection experiment. *)
module Updown_two_cell = struct
  let registers = [| Machine.reg Machine.Mwmr; Machine.reg Machine.Mwmr |]

  let update_prog ~base ~delta =
    if delta >= 0 then Program.faa base delta (fun _ -> Program.return ())
    else Program.faa (base + 1) (-delta) (fun _ -> Program.return ())

  let read_buggy_prog ~base =
    Program.read base (fun inc ->
        Program.read (base + 1) (fun dec -> Program.return (inc.(0) - dec.(0))))

  let read_safe_prog ~base =
    Program.read (base + 1) (fun dec ->
        Program.read base (fun inc -> Program.return (inc.(0) - dec.(0))))

  let update_op ?obj ~delta () =
    Machine.update_op ?obj ~label:"update" ~arg:delta (fun () ->
        update_prog ~base:0 ~delta)

  let read_op ?obj ~variant () =
    let label, prog =
      match variant with
      | `Buggy -> ("read-buggy", read_buggy_prog)
      | `Safe -> ("read-safe", read_safe_prog)
    in
    Machine.query_op ?obj ~label ~arg:0 (fun () -> prog ~base:0)
end
