(** Schedulers: who takes the next step.

    A schedule σ (Section 2.1) is the order in which processes take steps;
    because the simulated algorithms are deterministic, (scheduler, seeds)
    fully determine an execution, making every run reproducible. *)

type t =
  | Round_robin  (** cycle over runnable processes *)
  | Random of int64  (** uniformly random runnable process, seeded *)
  | Explicit of int list
      (** fixed process sequence — entries naming processes with no work are
          skipped — then round-robin once exhausted. Used to replay
          hand-crafted executions (Figure 2, Example 9) exactly. *)
  | Weighted of int64 * float array
      (** seeded random choice with per-process weights; processes beyond
          the array get weight 1. Models slow readers / fast writers. *)
  | Stall of { victim : int; after : int; for_steps : int; seed : int64 }
      (** adversarial: random scheduling, except that once [victim] has
          taken [after] steps it is frozen for the next [for_steps] global
          steps — the classic adversary that parks an operation mid-flight
          while others proceed. *)

type state = { choose : runnable:int list -> step:int -> int }
(** Instantiated scheduler: picks among the currently runnable processes. *)

val instantiate : t -> state
(** Fresh mutable scheduling state (cursors, RNG, stall bookkeeping). *)
