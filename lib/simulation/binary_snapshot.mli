(** Algorithm 3: binary snapshot from a batched counter — the reduction
    behind the Ω(n) lower bound (Theorem 14).

    Component [i] lives in bit [i] of the counter: switching 0→1 adds 2^i;
    switching 1→0 adds 2^n − 2^i, which clears the bit modulo 2^n using only
    additions. Invariant 1 of the paper: the counter always holds
    c·2^n + Σ v_i·2^i, so a scan is one counter read plus local decoding.
    The counter implementation is pluggable: the SWMR snapshot counter
    reproduces the paper's proof setting; the FAA counter isolates the
    reduction logic. *)

type t

val create : n:int -> Algos.counter_impl -> t
(** [n] components (= processes), each with process-local state v_i.
    @raise Invalid_argument if [n <= 0] or [n > 20] (bit-budget guard). *)

val registers : t -> Machine.reg_spec array
(** The underlying counter's register bank. *)

val update_prog : t -> proc:int -> v:int -> unit Program.t
(** Set component [proc] to [v] ∈ {0,1}; returns immediately (0 shared
    steps) when unchanged — line 4 of Algorithm 3.
    @raise Invalid_argument if [v] is not a bit. *)

val scan_prog : t -> int Program.t
(** Read the counter once; the result is the component vector encoded as a
    bitmask of the low [n] bits. *)

val update_op : ?obj:int -> t -> proc:int -> v:int -> unit -> Machine.operation
val scan_op : ?obj:int -> t -> unit -> Machine.operation
