type fault =
  | Crash_stop of { victim : int; after_steps : int }
  | Crash_in_op of { victim : int; nth_op : int; after_op_steps : int }
  | Freeze of { victim : int; at_step : int; for_steps : int }

type plan = fault list

type counters = {
  mutable total_steps : int;
  mutable ops_invoked : int;
  mutable steps_in_op : int;
  mutable dead : bool;
}

type state = { faults : fault list; tbl : (int, counters) Hashtbl.t }

let instantiate plan =
  let st = { faults = plan; tbl = Hashtbl.create 8 } in
  (* A victim with after_steps <= 0 is dead before its first step. *)
  List.iter
    (function
      | Crash_stop { victim; after_steps } when after_steps <= 0 ->
          Hashtbl.replace st.tbl victim
            { total_steps = 0; ops_invoked = 0; steps_in_op = 0; dead = true }
      | _ -> ())
    plan;
  st

let counters st proc =
  match Hashtbl.find_opt st.tbl proc with
  | Some c -> c
  | None ->
      let c = { total_steps = 0; ops_invoked = 0; steps_in_op = 0; dead = false } in
      Hashtbl.replace st.tbl proc c;
      c

let crashed st proc =
  match Hashtbl.find_opt st.tbl proc with Some c -> c.dead | None -> false

let crashed_procs st =
  Hashtbl.fold (fun p c acc -> if c.dead then p :: acc else acc) st.tbl []
  |> List.sort Int.compare

let frozen st ~step proc =
  List.exists
    (function
      | Freeze { victim; at_step; for_steps } ->
          victim = proc && step >= at_step && step < at_step + for_steps
      | Crash_stop _ | Crash_in_op _ -> false)
    st.faults

let schedulable st ~step runnable =
  let alive = List.filter (fun p -> not (crashed st p)) runnable in
  match List.filter (fun p -> not (frozen st ~step p)) alive with
  | [] -> alive (* everyone frozen: ignore the freeze rather than deadlock *)
  | ps -> ps

let note_invocation st ~proc =
  let c = counters st proc in
  c.ops_invoked <- c.ops_invoked + 1;
  c.steps_in_op <- 0

let note_step st ~proc =
  let c = counters st proc in
  c.total_steps <- c.total_steps + 1;
  c.steps_in_op <- c.steps_in_op + 1;
  List.iter
    (function
      | Crash_stop { victim; after_steps }
        when victim = proc && c.total_steps >= after_steps ->
          c.dead <- true
      | Crash_in_op { victim; nth_op; after_op_steps }
        when victim = proc && c.ops_invoked = nth_op
             && c.steps_in_op >= max 1 after_op_steps ->
          c.dead <- true
      | _ -> ())
    st.faults

let pp ppf = function
  | Crash_stop { victim; after_steps } ->
      Format.fprintf ppf "crash-stop(p%d@@%d)" victim after_steps
  | Crash_in_op { victim; nth_op; after_op_steps } ->
      Format.fprintf ppf "crash-in-op(p%d, op %d, step %d)" victim nth_op
        after_op_steps
  | Freeze { victim; at_step; for_steps } ->
      Format.fprintf ppf "freeze(p%d@@[%d,%d))" victim at_step (at_step + for_steps)

let describe plan =
  match plan with
  | [] -> "no faults"
  | _ ->
      String.concat ", " (List.map (fun f -> Format.asprintf "%a" pp f) plan)
