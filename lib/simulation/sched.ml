(** Schedulers: who takes the next step.

    A schedule σ (Section 2.1) is the order in which processes take steps.
    The machine asks the scheduler to pick among the processes that still
    have work; determinism of the algorithms means (scheduler, seeds) fully
    determine the execution, making every simulated history reproducible. *)

type t =
  | Round_robin  (** cycle over runnable processes *)
  | Random of int64  (** uniformly random runnable process, seeded *)
  | Explicit of int list
      (** fixed process sequence — entries naming processes with no work are
          skipped — then round-robin once exhausted. Used to replay
          hand-crafted executions (Figure 2, Example 9) exactly. *)
  | Weighted of int64 * float array
      (** seeded random choice with per-process weights; processes beyond
          the array get weight 1. Models slow readers / fast writers. *)
  | Stall of { victim : int; after : int; for_steps : int; seed : int64 }
      (** adversarial: random scheduling, except that once [victim] has
          taken [after] steps it is frozen for the next [for_steps] global
          steps. The classic adversary for exposing non-linearizable
          interleavings (an operation stalled mid-flight while others
          proceed). *)

type state = { choose : runnable:int list -> step:int -> int }

let round_robin_state () =
  let last = ref (-1) in
  fun ~runnable ->
    let next =
      match List.find_opt (fun p -> p > !last) runnable with
      | Some p -> p
      | None -> List.hd runnable
    in
    last := next;
    next

let instantiate = function
  | Round_robin ->
      let rr = round_robin_state () in
      { choose = (fun ~runnable ~step:_ -> rr ~runnable) }
  | Random seed ->
      let g = Rng.Splitmix.create seed in
      {
        choose =
          (fun ~runnable ~step:_ ->
            List.nth runnable (Rng.Splitmix.next_int g (List.length runnable)));
      }
  | Explicit seq ->
      let remaining = ref seq in
      let rr = round_robin_state () in
      {
        choose =
          (fun ~runnable ~step:_ ->
            let rec pick () =
              match !remaining with
              | p :: rest ->
                  remaining := rest;
                  if List.mem p runnable then p else pick ()
              | [] -> rr ~runnable
            in
            pick ());
      }
  | Weighted (seed, weights) ->
      let g = Rng.Splitmix.create seed in
      let weight p = if p < Array.length weights then max 0.0 weights.(p) else 1.0 in
      {
        choose =
          (fun ~runnable ~step:_ ->
            let total = List.fold_left (fun acc p -> acc +. weight p) 0.0 runnable in
            if total <= 0.0 then List.hd runnable
            else begin
              let u = Rng.Splitmix.next_float g *. total in
              let rec walk acc = function
                | [] -> List.hd (List.rev runnable)
                | [ p ] -> p
                | p :: rest ->
                    let acc = acc +. weight p in
                    if u < acc then p else walk acc rest
              in
              walk 0.0 runnable
            end);
      }
  | Stall { victim; after; for_steps; seed } ->
      let g = Rng.Splitmix.create seed in
      let victim_steps = ref 0 in
      let frozen_until = ref None in
      {
        choose =
          (fun ~runnable ~step ->
            let usable =
              match !frozen_until with
              | Some until when step <= until -> List.filter (fun p -> p <> victim) runnable
              | Some _ ->
                  frozen_until := None;
                  runnable
              | None -> runnable
            in
            let usable = if usable = [] then runnable else usable in
            let p = List.nth usable (Rng.Splitmix.next_int g (List.length usable)) in
            if p = victim then begin
              incr victim_steps;
              if !victim_steps = after && !frozen_until = None then
                frozen_until := Some (step + for_steps)
            end;
            p);
      }
