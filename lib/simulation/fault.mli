(** Fault plans: crash-stop and transient-freeze adversaries for the
    simulated machine.

    The paper's guarantees are adversarial by construction — Definition 2
    quantifies over completions of pending operations, and Algorithm 2 /
    the PCM are wait-free, so safety and per-process progress must survive
    schedules in which processes crash or stall forever mid-operation. A
    {!plan} is a list of faults applied on top of any {!Sched.t}: the
    scheduler still picks among runnable processes, but the fault layer
    retires crashed processes permanently (their in-flight operation is
    left pending in the history, feeding the checkers' completion search)
    and hides frozen processes while their freeze window is open.

    Crash granularity is the machine step: a process can crash only at a
    step boundary, never halfway through an atomic register access —
    matching the crash-stop model in which a step either happens or does
    not. *)

type fault =
  | Crash_stop of { victim : int; after_steps : int }
      (** [victim] halts forever once it has taken [after_steps] machine
          steps in total (counted across all of its operations). If it is
          mid-operation at that point the operation stays pending; any
          not-yet-invoked operations in its script are silently abandoned
          (they never appear in the history). [after_steps <= 0] crashes
          the victim before its first step. *)
  | Crash_in_op of { victim : int; nth_op : int; after_op_steps : int }
      (** [victim] halts during its [nth_op]-th invoked operation
          (1-based) once that operation has performed [after_op_steps]
          steps — the canonical "die with an update in flight" adversary.
          Invocation coincides with the first step in this machine, so the
          earliest effective crash point is after one step of the
          operation. *)
  | Freeze of { victim : int; at_step : int; for_steps : int }
      (** Transient: [victim] is not schedulable during global steps
          [\[at_step, at_step + for_steps)]. Unlike {!Sched.Stall} the
          window is anchored to global time, so plans compose
          predictably. If every runnable process is frozen the freeze is
          ignored for that step (the machine never deadlocks on a
          transient fault). *)

type plan = fault list
(** Faults compose; the empty plan injects nothing. *)

type state
(** Instantiated plan: per-victim step/operation counters and the set of
    already-crashed processes. *)

val instantiate : plan -> state

val crashed : state -> int -> bool
(** Has this process crashed (permanently)? *)

val crashed_procs : state -> int list
(** Crashed processes so far, ascending. *)

val schedulable : state -> step:int -> int list -> int list
(** [schedulable st ~step runnable] removes crashed processes always, and
    frozen processes unless that would leave nobody to run. The result is
    empty only when every runnable process has crashed. *)

val note_invocation : state -> proc:int -> unit
(** Tell the fault layer [proc] just invoked a fresh operation. *)

val note_step : state -> proc:int -> unit
(** Tell the fault layer [proc] just completed one machine step; this is
    where crash triggers fire (checked after the step, so a victim with
    [after_steps = k] performs exactly [k] steps). *)

val pp : Format.formatter -> fault -> unit
val describe : plan -> string
(** Human-readable one-liner, e.g. ["crash-stop(p1@3), freeze(p0@[5,9))"]. *)
