(** A linearizable batched counter from SWMR registers with O(1) updates —
    by giving up wait-freedom.

    Theorem 14 says a {e wait-free} linearizable batched counter from SWMR
    registers must pay Ω(n) steps per update. There are three ways out, and
    the experiments compare all of them:

    - weaken the criterion: the IVL counter ({!Algos.Ivl_counter}) — O(1)
      update, O(n) read, wait-free;
    - strengthen the primitive: the FAA counter ({!Algos.Faa_counter}) —
      O(1)/O(1), but fetch-and-add is not a SWMR register;
    - weaken the progress guarantee: {e this} counter — O(1) update (write
      own register with a bumped sequence number) and a {e lock-free but not
      wait-free} read that double-collects until two consecutive collects
      agree on every sequence number. A stalled-free-of-writers schedule
      terminates the read in 2n steps; a continuously interfering writer can
      starve it forever, which is precisely the price the lower bound says
      someone must pay.

    Register encoding: [\[| contribution; seq |\]]. *)

val registers : n:int -> Machine.reg_spec array

val update_prog : base:int -> proc:int -> amount:int -> unit Program.t
(** Read own register, write back (contribution + amount, seq + 1): 2 steps. *)

val read_prog : ?max_attempts:int -> base:int -> n:int -> unit -> int Program.t
(** Double-collect until clean, then return the sum. [max_attempts]
    (default 1000) bounds the retries so adversarial schedules surface as a
    counted failure rather than a hung simulation; on exhaustion the final
    collect's sum is returned with {e no} linearizability guarantee — tests
    only drive it below the bound. *)

val update_op : ?obj:int -> proc:int -> amount:int -> unit -> Machine.operation
val read_op : ?obj:int -> ?max_attempts:int -> n:int -> unit -> Machine.operation
