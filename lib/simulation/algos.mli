(** Simulated implementations of the paper's algorithms (and their foils),
    expressed in the {!Program} instruction set so the machine can count
    their steps and extract checkable histories. *)

(** A batched-counter implementation usable as a building block —
    {!Binary_snapshot} (Algorithm 3) plugs one in. *)
type counter_impl = {
  registers : Machine.reg_spec array;  (** the register bank it needs *)
  update_prog : proc:int -> amount:int -> unit Program.t;
  read_prog : unit -> int Program.t;
  impl_name : string;
}

(** The IVL batched counter — Algorithm 2. Register [i] (SWMR, owner [i])
    holds process [i]'s accumulated batches. update: read own + write own
    (2 steps, O(1)); read: collect all [n] and sum (O(n)). Theorem 11. *)
module Ivl_counter : sig
  val registers : n:int -> Machine.reg_spec array
  val update_prog : base:int -> proc:int -> amount:int -> unit Program.t
  val read_prog : base:int -> n:int -> int Program.t
  val impl : n:int -> counter_impl

  val update_op : ?obj:int -> proc:int -> amount:int -> unit -> Machine.operation
  val read_op : ?obj:int -> n:int -> unit -> Machine.operation
end

(** A linearizable counter from fetch-and-add: one MWMR register, O(1) —
    but built from a primitive strictly stronger than SWMR registers, the
    contrast the end of Section 6 draws. *)
module Faa_counter : sig
  val registers : Machine.reg_spec array
  val update_prog : base:int -> amount:int -> unit Program.t
  val read_prog : base:int -> int Program.t
  val impl : counter_impl

  val update_op : ?obj:int -> amount:int -> unit -> Machine.operation
  val read_op : ?obj:int -> unit -> Machine.operation
end

(** Simulated PCM — Algorithm 1 under concurrent invocations: a d×w bank of
    MWMR counters bumped with [Faa] (line 5) and read plainly (line 9).
    Hash functions are explicit mappings so tests can pin collisions
    (Example 9). *)
module Pcm_sim : sig
  type t

  val make : ?base:int -> d:int -> w:int -> hash:(int -> int -> int) -> unit -> t
  (** [hash row element] must return a column in [\[0, w)]. *)

  val registers : t -> initial:(int -> int) -> Machine.reg_spec array
  val zero_registers : t -> Machine.reg_spec array
  val cell : t -> int -> int -> int
  val update_prog : t -> int -> unit Program.t
  val query_prog : t -> int -> int Program.t
  val update_op : ?obj:int -> t -> a:int -> unit -> Machine.operation
  val query_op : ?obj:int -> t -> a:int -> unit -> Machine.operation
end

(** An IVL max register: the Algorithm 2 recipe applied to a second monotone
    object (update O(1), read O(n), IVL against [Spec.Max_spec]). *)
module Ivl_max : sig
  val registers : n:int -> Machine.reg_spec array
  val update_prog : base:int -> proc:int -> value:int -> unit Program.t
  val read_prog : base:int -> n:int -> int Program.t
  val update_op : ?obj:int -> proc:int -> value:int -> unit -> Machine.operation
  val read_op : ?obj:int -> n:int -> unit -> Machine.operation
end

(** The Section 3.4 separation, materialized: an up/down counter from two
    monotone cells (increments in one, decrement magnitudes in the other).
    Reading the increment cell {e first} can observe only the decrement of a
    concurrent inc;dec pair — below every linearization, not IVL, and the
    checker catches it; reading decrements first stays IVL. *)
module Updown_two_cell : sig
  val registers : Machine.reg_spec array
  val update_prog : base:int -> delta:int -> unit Program.t
  val read_buggy_prog : base:int -> int Program.t
  val read_safe_prog : base:int -> int Program.t
  val update_op : ?obj:int -> delta:int -> unit -> Machine.operation

  val read_op : ?obj:int -> variant:[ `Buggy | `Safe ] -> unit -> Machine.operation
end
