(** Counterexample minimization: delta-debug a failing schedule.

    Random-schedule fuzzing finds violations as ~tens-of-steps scheduler
    traces; what a human (or a regression test) wants is the minimal
    {!Sched.Explicit} schedule that still reproduces the violation. This
    module shrinks a trace with Zeller-style delta debugging (remove whole
    chunks, then a greedy single-element sweep) against a caller-supplied
    reproduction predicate.

    Removing entries from an explicit schedule always leaves a valid total
    schedule: {!Sched.Explicit} skips entries naming idle processes and
    falls back to round-robin once exhausted, so the search space is simply
    "all subsequences of the original trace". *)

val minimize : ?max_checks:int -> check:(int list -> bool) -> int list -> int list
(** [minimize ~check trace] returns a subsequence of [trace] on which
    [check] still returns [true] ([check cand] must mean "the failure still
    reproduces when the execution is replayed under [Sched.Explicit cand]").
    If [check trace] is [false] the trace is returned unchanged.

    The result is 1-minimal when the check budget allows: removing any
    single remaining element makes the failure vanish. [max_checks]
    (default 4000) bounds the number of [check] invocations — on budget
    exhaustion the best reduction found so far is returned. [check] must be
    deterministic (replays under the simulator are). *)

val checks_used : unit -> int
(** Number of [check] invocations performed by the most recent
    {!minimize} call (diagnostics for the CLI). *)
