let registers ~n =
  Array.init n (fun i -> Machine.reg ~init:[| 0; 0 |] (Machine.Swmr i))

let update_prog ~base ~proc ~amount =
  Program.read (base + proc) (fun mine ->
      Program.write (base + proc)
        [| mine.(0) + amount; mine.(1) + 1 |]
        (Program.return ()))

let read_prog ?(max_attempts = 1000) ~base ~n () =
  let rec attempt k =
    Program.collect ~base ~n (fun c1 ->
        Program.collect ~base ~n (fun c2 ->
            let clean = ref true in
            for j = 0 to n - 1 do
              if c1.(j).(1) <> c2.(j).(1) then clean := false
            done;
            if !clean || k >= max_attempts then
              Program.return (Array.fold_left (fun acc r -> acc + r.(0)) 0 c2)
            else attempt (k + 1)))
  in
  attempt 1

let update_op ?obj ~proc ~amount () =
  Machine.update_op ?obj ~label:"update" ~arg:amount (fun () ->
      update_prog ~base:0 ~proc ~amount)

let read_op ?obj ?max_attempts ~n () =
  Machine.query_op ?obj ~label:"read" ~arg:0 (fun () ->
      read_prog ?max_attempts ~base:0 ~n ())
