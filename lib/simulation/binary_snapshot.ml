(** Algorithm 3: binary snapshot from a batched counter.

    The reduction behind the Ω(n) lower bound (Theorem 14). Component [i] of
    the binary snapshot is encoded in bit [i] of the counter: switching
    0 → 1 adds 2^i; switching 1 → 0 adds 2^n − 2^i, which clears bit [i]
    modulo 2^n while only ever {e adding} (batched counters cannot
    decrement). Invariant 1 of the paper: the counter always holds
    c·2^n + Σ v_i·2^i, so a scan reads the counter once and decodes the low
    n bits.

    The counter is pluggable ({!Algos.counter_impl}): with the linearizable
    snapshot-based counter the whole construction runs from SWMR registers
    as in the paper's proof; with the FAA counter the reduction logic can be
    tested in isolation. Scans return the decoded component vector as an
    integer bitmask. *)

type t = {
  n : int;
  counter : Algos.counter_impl;
  locals : int array; (* v_i of Algorithm 3, process-local state *)
}

let create ~n counter =
  if n <= 0 then invalid_arg "Binary_snapshot.create: n must be positive";
  if n > 20 then invalid_arg "Binary_snapshot.create: n too large to encode in counter bits";
  { n; counter; locals = Array.make n 0 }

let registers t = t.counter.Algos.registers

(* update_i(v): skip if unchanged, else add 2^i (raise) or 2^n − 2^i (clear). *)
let update_prog t ~proc ~v =
  if v <> 0 && v <> 1 then invalid_arg "Binary_snapshot.update_prog: v must be 0 or 1";
  if t.locals.(proc) = v then Program.return ()
  else begin
    t.locals.(proc) <- v;
    let amount = if v = 1 then 1 lsl proc else (1 lsl t.n) - (1 lsl proc) in
    t.counter.Algos.update_prog ~proc ~amount
  end

let scan_prog t =
  Program.bind (t.counter.Algos.read_prog ()) (fun sum ->
      Program.return (sum land ((1 lsl t.n) - 1)))

let update_op ?obj t ~proc ~v () =
  Machine.update_op ?obj ~label:"bs-update" ~arg:v (fun () -> update_prog t ~proc ~v)

let scan_op ?obj t () =
  Machine.query_op ?obj ~label:"bs-scan" ~arg:0 (fun () -> scan_prog t)
