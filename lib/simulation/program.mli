(** Programs for the simulated shared-memory machine.

    The paper's complexity results (Theorems 11 and 14) are statements about
    {e steps} — accesses to atomic shared registers — in the standard shared
    memory model (Section 2.1). This continuation-based DSL is the machine's
    instruction set: local computation happens inside the OCaml closures
    between instructions and is free, exactly as in the model.

    Register values are small integer arrays, so one register can hold the
    structured tuples (value, sequence number, embedded view) snapshot
    algorithms write atomically; an access costs one step regardless of
    width. [Faa] is a fetch-and-add read-modify-write on cell 0 — strictly
    stronger than a SWMR register, permitted by the machine only on
    registers declared multi-writer. *)

type 'r t =
  | Done of 'r  (** return from the operation *)
  | Read of int * (int array -> 'r t)  (** one shared-memory read step *)
  | Write of int * int array * 'r t  (** one shared-memory write step *)
  | Faa of int * int * (int -> 'r t)
      (** fetch-and-add on cell 0: one read-modify-write step, passing the
          previous value to the continuation *)

val return : 'r -> 'r t

val read : int -> (int array -> 'r t) -> 'r t
(** [read r k] reads register [r] and continues with its (copied) content. *)

val write : int -> int array -> 'r t -> 'r t
(** [write r v next] stores [v] in register [r], then runs [next]. *)

val faa : int -> int -> (int -> 'r t) -> 'r t
(** [faa r delta k] atomically adds [delta] to cell 0 of register [r]. *)

val collect_ints : base:int -> n:int -> (int array -> 'r t) -> 'r t
(** Read cell 0 of registers [base .. base+n-1] in order (n steps). *)

val collect : base:int -> n:int -> (int array array -> 'r t) -> 'r t
(** Read the full contents of registers [base .. base+n-1] (n steps). *)

val bind : 'a t -> ('a -> 'b t) -> 'b t
(** Sequential composition. *)

val ( let* ) : 'a t -> ('a -> 'b t) -> 'b t
