(** Wait-free atomic snapshot from SWMR registers, and the linearizable
    batched counter built on it.

    This is the classic single-writer snapshot of Afek, Attiya, Dolev,
    Gafni, Merritt and Shavit (JACM 1993). Register [i] (SWMR, owner [i])
    holds the triple (contribution_i, seq_i, embedded view). A scan performs
    double collects until either two consecutive collects agree on every
    sequence number (a clean scan — the values were simultaneously present)
    or some process is seen moving {e twice}, in which case that process
    performed an entire update within the scan's interval and its embedded
    view — itself obtained by a scan nested in the scan's interval — is
    borrowed. An update scans, then writes its new contribution, bumped
    sequence number, and the scanned view.

    The counter read sums a scanned view; the update adds its batch to its
    own contribution through the update protocol. Because scans are atomic,
    the counter is {e linearizable} — and its update costs Θ(n) collects in
    the worst case and at least one full collect (n reads) always, making
    the Ω(n) lower bound of Theorem 14 visible in measured step counts
    (experiment E2).

    Register encoding: [\[| contribution; seq; view_0 … view_{n−1} |\]]. *)

(* A scan, invoking [k] with the array of all n contributions. *)
let scan ~base ~n k =
  let moved = Array.make n false in
  let rec attempt () =
    Program.collect ~base ~n (fun c1 ->
        Program.collect ~base ~n (fun c2 ->
            let changed =
              List.filter (fun j -> c1.(j).(1) <> c2.(j).(1)) (List.init n Fun.id)
            in
            match changed with
            | [] -> k (Array.map (fun r -> r.(0)) c2)
            | _ -> (
                match List.find_opt (fun j -> moved.(j)) changed with
                | Some j ->
                    (* j moved twice: borrow its embedded view. *)
                    k (Array.sub c2.(j) 2 n)
                | None ->
                    List.iter (fun j -> moved.(j) <- true) changed;
                    attempt ())))
  in
  attempt ()

let registers ~n =
  Array.init n (fun i -> Machine.reg ~init:(Array.make (n + 2) 0) (Machine.Swmr i))

let update_prog ~base ~n ~proc ~amount =
  scan ~base ~n (fun view ->
      Program.read (base + proc) (fun mine ->
          let content = Array.make (n + 2) 0 in
          content.(0) <- mine.(0) + amount;
          content.(1) <- mine.(1) + 1;
          Array.blit view 0 content 2 n;
          Program.write (base + proc) content (Program.return ())))

let read_prog ~base ~n =
  scan ~base ~n (fun view -> Program.return (Array.fold_left ( + ) 0 view))

let impl ~n =
  {
    Algos.registers = registers ~n;
    update_prog = (fun ~proc ~amount -> update_prog ~base:0 ~n ~proc ~amount);
    read_prog = (fun () -> read_prog ~base:0 ~n);
    impl_name = "snapshot-swmr";
  }

let update_op ?obj ~n ~proc ~amount () =
  Machine.update_op ?obj ~label:"update" ~arg:amount (fun () ->
      update_prog ~base:0 ~n ~proc ~amount)

let read_op ?obj ~n () =
  Machine.query_op ?obj ~label:"read" ~arg:0 (fun () -> read_prog ~base:0 ~n)
