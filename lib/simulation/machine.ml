type reg_kind = Swmr of int | Mwmr

type reg_spec = { kind : reg_kind; init : int array }

let reg ?(init = [| 0 |]) kind = { kind; init }

type operation = {
  obj : int;
  kind : (int, int) Hist.Op.kind;
  label : string;
  code : unit -> int option Program.t;
}

let update_op ?(obj = 0) ~label ~arg body =
  {
    obj;
    kind = Hist.Op.Update arg;
    label;
    code =
      (fun () ->
        let rec wrap = function
          | Program.Done () -> Program.Done None
          | Program.Read (r, k) -> Program.Read (r, fun v -> wrap (k v))
          | Program.Write (r, v, next) -> Program.Write (r, v, wrap next)
          | Program.Faa (r, d, k) -> Program.Faa (r, d, fun v -> wrap (k v))
        in
        wrap (body ()));
  }

let query_op ?(obj = 0) ~label ~arg body =
  {
    obj;
    kind = Hist.Op.Query arg;
    label;
    code =
      (fun () ->
        let rec wrap = function
          | Program.Done v -> Program.Done (Some v)
          | Program.Read (r, k) -> Program.Read (r, fun v -> wrap (k v))
          | Program.Write (r, v, next) -> Program.Write (r, v, wrap next)
          | Program.Faa (r, d, k) -> Program.Faa (r, d, fun v -> wrap (k v))
        in
        wrap (body ()));
  }

exception Protocol_violation of string

type op_stats = { op_id : int; label : string; proc : int; steps : int }

type result = {
  history : (int, int, int) Hist.History.t;
  stats : op_stats list;
  crashed : int list;
}

type running = {
  op : (int, int, int) Hist.Op.t;
  label : string;
  mutable prog : int option Program.t;
  mutable steps : int;
}

let run_state ?(max_steps = 10_000_000) ?(faults = []) ~registers ~scripts ~state () =
  let nprocs = Array.length scripts in
  let fstate = Fault.instantiate faults in
  let regs = Array.map (fun (spec : reg_spec) -> Array.copy spec.init) registers in
  let kinds = Array.map (fun (spec : reg_spec) -> spec.kind) registers in
  let queues = Array.map (fun ops -> ref ops) scripts in
  let current : running option array = Array.make nprocs None in
  let events = ref [] in
  let stats = ref [] in
  let next_id = ref 0 in
  let sched_state = state in
  let total_steps = ref 0 in
  let emit dir op = events := { Hist.History.dir; op } :: !events in
  let op_with_ret op ret =
    match (op.Hist.Op.kind, ret) with
    | Hist.Op.Update _, None -> op
    | Hist.Op.Query _, Some v -> Hist.Op.with_return op v
    | Hist.Op.Update _, Some _ ->
        raise (Protocol_violation "update operation produced a return value")
    | Hist.Op.Query _, None ->
        raise (Protocol_violation "query operation produced no return value")
  in
  let finish proc (r : running) ret =
    emit Hist.History.Rsp (op_with_ret r.op ret);
    stats := { op_id = r.op.Hist.Op.id; label = r.label; proc; steps = r.steps } :: !stats;
    current.(proc) <- None
  in
  let check_write proc r =
    match kinds.(r) with
    | Swmr owner when owner <> proc ->
        raise
          (Protocol_violation
             (Printf.sprintf "process %d wrote SWMR register %d owned by %d" proc r owner))
    | Swmr _ | Mwmr -> ()
  in
  let check_faa r =
    match kinds.(r) with
    | Mwmr -> ()
    | Swmr _ ->
        raise
          (Protocol_violation
             (Printf.sprintf "fetch-and-add on register %d requires an MWMR register" r))
  in
  let runnable () =
    let acc = ref [] in
    for p = nprocs - 1 downto 0 do
      if
        (not (Fault.crashed fstate p))
        && (current.(p) <> None || !(queues.(p)) <> [])
      then acc := p :: !acc
    done;
    !acc
  in
  let step_proc proc =
    (match current.(proc) with
    | Some _ -> ()
    | None -> (
        match !(queues.(proc)) with
        | [] -> assert false
        | next :: rest ->
            queues.(proc) := rest;
            let id = !next_id in
            incr next_id;
            let op =
              { Hist.Op.id; proc; obj = next.obj; kind = next.kind; ret = None }
            in
            emit Hist.History.Inv op;
            Fault.note_invocation fstate ~proc;
            current.(proc) <-
              Some { op; label = next.label; prog = next.code (); steps = 0 }));
    match current.(proc) with
    | None -> assert false
    | Some r -> (
        match r.prog with
        | Program.Done ret -> finish proc r ret
        | Program.Read (reg_ix, k) ->
            r.steps <- r.steps + 1;
            Fault.note_step fstate ~proc;
            let next = k (Array.copy regs.(reg_ix)) in
            (match next with
            | Program.Done ret ->
                r.prog <- next;
                finish proc r ret
            | _ -> r.prog <- next)
        | Program.Write (reg_ix, v, next) ->
            check_write proc reg_ix;
            r.steps <- r.steps + 1;
            Fault.note_step fstate ~proc;
            regs.(reg_ix) <- Array.copy v;
            (match next with
            | Program.Done ret ->
                r.prog <- next;
                finish proc r ret
            | _ -> r.prog <- next)
        | Program.Faa (reg_ix, delta, k) ->
            check_faa reg_ix;
            r.steps <- r.steps + 1;
            Fault.note_step fstate ~proc;
            let old = regs.(reg_ix).(0) in
            regs.(reg_ix).(0) <- old + delta;
            let next = k old in
            (match next with
            | Program.Done ret ->
                r.prog <- next;
                finish proc r ret
            | _ -> r.prog <- next))
  in
  let rec loop () =
    match runnable () with
    | [] -> ()
    | procs ->
        if !total_steps > max_steps then
          failwith "Machine.run: step budget exceeded (livelock?)";
        incr total_steps;
        let avail = Fault.schedulable fstate ~step:!total_steps procs in
        let p = sched_state.Sched.choose ~runnable:avail ~step:!total_steps in
        if not (List.mem p avail) then
          raise (Protocol_violation (Printf.sprintf "scheduler chose idle process %d" p));
        step_proc p;
        loop ()
  in
  loop ();
  {
    history = Hist.History.of_events (List.rev !events);
    stats = List.rev !stats;
    crashed = Fault.crashed_procs fstate;
  }

let run ?max_steps ?faults ~registers ~scripts ~sched () =
  run_state ?max_steps ?faults ~registers ~scripts ~state:(Sched.instantiate sched) ()

let run_traced ?max_steps ?faults ~registers ~scripts ~sched () =
  let trace = ref [] in
  let inner = Sched.instantiate sched in
  let state =
    {
      Sched.choose =
        (fun ~runnable ~step ->
          let p = inner.Sched.choose ~runnable ~step in
          trace := p :: !trace;
          p);
    }
  in
  let r = run_state ?max_steps ?faults ~registers ~scripts ~state () in
  (r, List.rev !trace)

type progress_audit = {
  audit_crashed : int list;
  surviving_ops : int;
  abandoned : int;
  max_op_steps : int;
}

let audit_progress ?(step_bound = max_int) result =
  let crashed = result.crashed in
  let is_crashed p = List.mem p crashed in
  let pending = Hist.History.pending result.history in
  (* Wait-freedom, empirically: an operation may remain pending only because
     its own process crashed — never because it waited on a crashed peer. *)
  let stranded =
    List.filter (fun (o : (int, int, int) Hist.Op.t) -> not (is_crashed o.Hist.Op.proc)) pending
  in
  match stranded with
  | o :: _ ->
      Error
        (Printf.sprintf
           "operation #%d by surviving process %d never completed" o.Hist.Op.id
           o.Hist.Op.proc)
  | [] -> (
      let surviving =
        List.filter (fun (s : op_stats) -> not (is_crashed s.proc)) result.stats
      in
      let over =
        List.find_opt (fun (s : op_stats) -> s.steps > step_bound) surviving
      in
      match over with
      | Some s ->
          Error
            (Printf.sprintf
               "operation #%d (%s) by process %d took %d steps, above the bound %d"
               s.op_id s.label s.proc s.steps step_bound)
      | None ->
          Ok
            {
              audit_crashed = crashed;
              surviving_ops = List.length surviving;
              abandoned = List.length pending;
              max_op_steps =
                List.fold_left (fun acc (s : op_stats) -> max acc s.steps) 0 surviving;
            })

let steps_by_label result =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (s : op_stats) ->
      let cur = match Hashtbl.find_opt tbl s.label with Some l -> l | None -> [] in
      Hashtbl.replace tbl s.label (s.steps :: cur))
    result.stats;
  Hashtbl.fold (fun label steps acc -> (label, List.rev steps) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* Exhaustive exploration: a schedule is a sequence of choices among
   runnable processes. Enumerate the choice tree by replaying each prefix
   with a probing scheduler that follows the prefix and then reports the
   runnable set (via [Exit]). Replay makes the cost quadratic in the tree
   size, which the tiny model-checked configurations afford. *)
exception Probe_done of int list

let explore ?(max_histories = 100_000) ?max_steps ~registers ~scripts () =
  let seen = Hashtbl.create 256 in
  let results = ref [] in
  let schedules = ref 0 in
  let rec expand prefix =
    incr schedules;
    if !schedules > max_histories then
      failwith "Machine.explore: schedule budget exceeded";
    let remaining = ref prefix in
    let probe =
      {
        Sched.choose =
          (fun ~runnable ~step:_ ->
            match !remaining with
            | p :: rest ->
                remaining := rest;
                (* Prefixes are built from observed runnable sets; a miss
                   would mean the machine is nondeterministic. *)
                assert (List.mem p runnable);
                p
            | [] -> raise (Probe_done runnable));
      }
    in
    match run_state ?max_steps ~registers ~scripts:(scripts ()) ~state:probe () with
    | exception Probe_done runnable ->
        List.iter (fun p -> expand (prefix @ [ p ])) runnable
    | result ->
        let key =
          Format.asprintf "%a"
            (Hist.History.pp ~pp_u:Format.pp_print_int ~pp_q:Format.pp_print_int
               ~pp_v:Format.pp_print_int)
            result.history
        in
        if not (Hashtbl.mem seen key) then begin
          Hashtbl.replace seen key ();
          results := result.history :: !results
        end
  in
  expand [];
  List.rev !results
