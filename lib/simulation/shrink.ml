let last_checks = ref 0

let checks_used () = !last_checks

(* Split [lst] into [n] contiguous chunks of near-equal size. *)
let chunked lst n =
  let len = List.length lst in
  let base = len / n and extra = len mod n in
  let rec take k lst =
    if k = 0 then ([], lst)
    else
      match lst with
      | [] -> ([], [])
      | x :: rest ->
          let chunk, rem = take (k - 1) rest in
          (x :: chunk, rem)
  in
  let rec go i lst =
    if i = n then []
    else
      let size = base + if i < extra then 1 else 0 in
      let chunk, rest = take size lst in
      chunk :: go (i + 1) rest
  in
  go 0 lst

let minimize ?(max_checks = 4000) ~check trace =
  let budget = ref max_checks in
  let used = ref 0 in
  let try_check cand =
    if !budget <= 0 then false
    else begin
      decr budget;
      incr used;
      check cand
    end
  in
  let result =
    if not (try_check trace) then trace
    else begin
      (* Phase 1: ddmin. Try dropping whole chunks (complements), refining
         the granularity when nothing smaller reproduces. *)
      let rec ddmin current n =
        let len = List.length current in
        if len <= 1 then current
        else
          let n = min n len in
          let chunks = chunked current n in
          (* Reduce to a single chunk if one suffices... *)
          match List.find_opt try_check chunks with
          | Some c -> ddmin c 2
          | None -> (
              (* ...otherwise try removing one chunk at a time. *)
              let complement i =
                List.concat (List.filteri (fun j _ -> j <> i) chunks)
              in
              let rec drop i =
                if i = n then None
                else
                  let cand = complement i in
                  if try_check cand then Some cand else drop (i + 1)
              in
              match drop 0 with
              | Some c -> ddmin c (max (n - 1) 2)
              | None -> if n < len then ddmin current (min len (2 * n)) else current)
      in
      let reduced = ddmin trace 2 in
      (* Phase 2: greedy single-element sweep until a fixpoint — yields
         1-minimality, which chunk removal alone does not guarantee. *)
      let rec sweep current =
        let len = List.length current in
        let rec at i cur =
          if i < 0 then cur
          else
            let cand = List.filteri (fun j _ -> j <> i) cur in
            if try_check cand then at (i - 1) cand else at (i - 1) cur
        in
        let next = at (len - 1) current in
        if List.length next < len && !budget > 0 then sweep next else next
      in
      sweep reduced
    end
  in
  last_checks := !used;
  result
