(** Arithmetic in GF(p) for the Mersenne prime p = 2^61 - 1.

    The CountMin and Count sketches need pairwise-independent hash functions
    of the form x ↦ ((a·x + b) mod p) mod w. Working modulo a Mersenne prime
    lets us reduce products with shifts and masks instead of division, and
    2^61 - 1 comfortably exceeds any element universe we use. *)

val p : int
(** The modulus 2^61 - 1 (fits in a 63-bit OCaml [int]). *)

val reduce : int -> int
(** [reduce x] is [x mod p] for [0 <= x < 2 * p]. *)

val add : int -> int -> int
(** [add a b] is [(a + b) mod p] for field elements [a], [b]. *)

val mul : int -> int -> int
(** [mul a b] is [(a * b) mod p] for field elements [a], [b], computed without
    overflow via 32/29-bit limb decomposition. *)

val mul_add : int -> int -> int -> int
(** [mul_add a x b] is [(a*x + b) mod p]. *)

val random_element : Rng.Splitmix.t -> int
(** [random_element g] is uniform on [\[0, p)]. *)

val random_nonzero : Rng.Splitmix.t -> int
(** [random_nonzero g] is uniform on [\[1, p)]. *)
