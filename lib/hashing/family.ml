type row = Universal_row of Universal.t | Explicit_row of (int -> int)

(* Two layouts for "d hash functions with range w":

   - [Rows]: d independent functions, evaluated independently — the classic
     CountMin coin-flip vector, and the only layout explicit test mappings
     and serialized coefficients can express.

   - [Double]: Kirsch–Mitzenmacher double hashing — two base functions h1,
     h2 and derived rows g_i(x) = (h1(x) + i·step(x)) mod w with step(x) in
     [1, w-1]. An update needs 2 field evaluations instead of d; KM's
     result is that the derived family preserves the sketch's asymptotic
     error behaviour, and the bench ablation measures the constant-factor
     accuracy cost on real streams. *)
type kind =
  | Rows of row array
  | Double of { h1 : Universal.t; h2 : Universal.t; d : int }

type t = {
  kind : kind;
  width : int;
  mask : int; (* width - 1 when width is a power of two, else -1 *)
  shift : int; (* log2 width when width is a power of two, else 0 *)
}

(* Sketch widths are powers of two in every benched configuration; caching
   the mask/shift turns the per-row divisions of the [Double] derivation
   into shifts. Semantics are unchanged: for non-negative v and pow2 w,
   [v land (w-1) = v mod w] and [v lsr log2 w = v / w] exactly. *)
let make kind width =
  if width > 0 && width land (width - 1) = 0 then begin
    let shift = ref 0 in
    while 1 lsl !shift < width do
      incr shift
    done;
    { kind; width; mask = width - 1; shift = !shift }
  end
  else { kind; width; mask = -1; shift = 0 }

let create g ~rows ~width =
  if rows <= 0 then invalid_arg "Family.create: rows must be positive";
  if width <= 0 then invalid_arg "Family.create: width must be positive";
  make
    (Rows (Array.init rows (fun _ -> Universal_row (Universal.create g ~width))))
    width

let of_functions fns =
  if Array.length fns = 0 then invalid_arg "Family.of_functions: empty family";
  let w = Universal.width fns.(0) in
  Array.iter
    (fun f ->
      if Universal.width f <> w then
        invalid_arg "Family.of_functions: all functions must share one width")
    fns;
  make (Rows (Array.map (fun f -> Universal_row f) fns)) w

let of_mapping ~width fns =
  if Array.length fns = 0 then invalid_arg "Family.of_mapping: empty family";
  if width <= 0 then invalid_arg "Family.of_mapping: width must be positive";
  make (Rows (Array.map (fun f -> Explicit_row f) fns)) width

let rows t = match t.kind with Rows a -> Array.length a | Double d -> d.d

let width t = t.width

let double_hashed t =
  match t.kind with Double _ -> true | Rows _ -> false

(* --- one-pass probing --------------------------------------------------

   [probe] does all per-element work that is independent of the row and
   packs it into one immediate int; [probe_col] derives a row's column from
   the pack with cheap integer arithmetic. For [Rows] the pack is the
   element itself (each row still evaluates its own function — nothing is
   shared); for [Double] the pack is h1·w + step, so an update touching d
   rows pays 2 field evaluations total instead of d (or 2d, were hash
   called per row). Packing instead of a tuple keeps the hot paths
   allocation-free. *)

let probe t x =
  match t.kind with
  | Rows _ -> x
  | Double { h1; h2; _ } ->
      if t.width = 1 then 0
      else (Universal.apply h1 x * t.width) + 1 + Universal.apply h2 x

let probe_col t p ~row =
  match t.kind with
  | Rows rs -> (
      match rs.(row) with
      | Universal_row f -> Universal.apply f p
      | Explicit_row f ->
          let v = f p mod t.width in
          if v < 0 then v + t.width else v)
  | Double _ ->
      if t.width = 1 then 0
      else if t.mask >= 0 then
        let h1x = p lsr t.shift and step = p land t.mask in
        (h1x + ((row * step) land t.mask)) land t.mask
      else
        let h1x = p / t.width and step = p mod t.width in
        (h1x + ((row * step) mod t.width)) mod t.width

let hash t ~row x = probe_col t (probe t x) ~row

let seeded ~seed ~rows ~width =
  let g = Rng.Splitmix.create seed in
  create g ~rows ~width

let seeded_km ~seed ~rows ~width =
  if rows <= 0 then invalid_arg "Family.seeded_km: rows must be positive";
  if width <= 0 then invalid_arg "Family.seeded_km: width must be positive";
  if width > 1 lsl 30 then
    invalid_arg "Family.seeded_km: width must fit the packed probe (<= 2^30)";
  let g = Rng.Splitmix.create seed in
  let h1 = Universal.create g ~width in
  (* step(x) = 1 + h2(x) with h2's range [0, w-2] keeps the stride nonzero,
     so consecutive derived rows never share a column (full distinctness
     needs step coprime to w, which KM's analysis does not require). *)
  let h2 = Universal.create g ~width:(max 1 (width - 1)) in
  make (Double { h1; h2; d = rows }) width

let coefficients t =
  match t.kind with
  | Double _ -> None
  | Rows rs -> (
      let exception Explicit in
      try
        Some
          (Array.map
             (function
               | Universal_row f -> Universal.coefficients f
               | Explicit_row _ -> raise Explicit)
             rs)
      with Explicit -> None)

let of_coefficients ~width coeffs =
  if Array.length coeffs = 0 then invalid_arg "Family.of_coefficients: empty family";
  if width <= 0 then invalid_arg "Family.of_coefficients: width must be positive";
  make
    (Rows
       (Array.map
          (fun (a, b) -> Universal_row (Universal.of_coefficients ~a ~b ~width))
          coeffs))
    width

let compatible a b =
  a == b
  || a.width = b.width
     &&
     match (a.kind, b.kind) with
     | Rows _, Rows _ -> (
         rows a = rows b
         &&
         match (coefficients a, coefficients b) with
         | Some ca, Some cb -> ca = cb
         | _ -> false)
     | Double d1, Double d2 ->
         d1.d = d2.d
         && Universal.coefficients d1.h1 = Universal.coefficients d2.h1
         && Universal.coefficients d1.h2 = Universal.coefficients d2.h2
     | _ -> false
