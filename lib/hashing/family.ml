type row = Universal_row of Universal.t | Explicit_row of (int -> int)

type t = { rows : row array; width : int }

let create g ~rows ~width =
  if rows <= 0 then invalid_arg "Family.create: rows must be positive";
  if width <= 0 then invalid_arg "Family.create: width must be positive";
  {
    rows = Array.init rows (fun _ -> Universal_row (Universal.create g ~width));
    width;
  }

let of_functions fns =
  if Array.length fns = 0 then invalid_arg "Family.of_functions: empty family";
  let w = Universal.width fns.(0) in
  Array.iter
    (fun f ->
      if Universal.width f <> w then
        invalid_arg "Family.of_functions: all functions must share one width")
    fns;
  { rows = Array.map (fun f -> Universal_row f) fns; width = w }

let of_mapping ~width fns =
  if Array.length fns = 0 then invalid_arg "Family.of_mapping: empty family";
  if width <= 0 then invalid_arg "Family.of_mapping: width must be positive";
  { rows = Array.map (fun f -> Explicit_row f) fns; width }

let rows t = Array.length t.rows

let width t = t.width

let hash t ~row x =
  match t.rows.(row) with
  | Universal_row f -> Universal.apply f x
  | Explicit_row f ->
      let v = f x mod t.width in
      if v < 0 then v + t.width else v

let seeded ~seed ~rows ~width =
  let g = Rng.Splitmix.create seed in
  create g ~rows ~width

let coefficients t =
  let exception Explicit in
  try
    Some
      (Array.map
         (function
           | Universal_row f -> Universal.coefficients f
           | Explicit_row _ -> raise Explicit)
         t.rows)
  with Explicit -> None

let of_coefficients ~width coeffs =
  if Array.length coeffs = 0 then invalid_arg "Family.of_coefficients: empty family";
  if width <= 0 then invalid_arg "Family.of_coefficients: width must be positive";
  {
    rows = Array.map (fun (a, b) -> Universal_row (Universal.of_coefficients ~a ~b ~width)) coeffs;
    width;
  }

let compatible a b =
  a == b
  || a.width = b.width
     && Array.length a.rows = Array.length b.rows
     &&
     match (coefficients a, coefficients b) with
     | Some ca, Some cb -> ca = cb
     | _ -> false
