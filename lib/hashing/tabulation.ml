type t = { tables : int array array }

let create g =
  let tables =
    Array.init 8 (fun _ ->
        Array.init 256 (fun _ -> Int64.to_int (Rng.Splitmix.next_int64 g) land max_int))
  in
  { tables }

let hash t x =
  let h = ref 0 in
  for byte = 0 to 7 do
    let b = (x lsr (byte * 8)) land 0xFF in
    h := !h lxor t.tables.(byte).(b)
  done;
  !h land max_int
