(** Simple tabulation hashing for 64-bit keys.

    Tabulation hashing (Zobrist; analysed by Pătraşcu & Thorup, "The power of
    simple tabulation hashing", 2011) is 3-independent and behaves like a
    fully random function for many streaming applications. We use it for the
    HyperLogLog and Quantiles sketches, which want well-mixed bits rather than
    a bounded range. *)

type t

val create : Rng.Splitmix.t -> t
(** Draw the eight 256-entry tables from [g]. *)

val hash : t -> int -> int
(** [hash t x] hashes the 63-bit key [x] to a 63-bit non-negative value. *)
