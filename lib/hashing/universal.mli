(** Pairwise-independent hash functions over GF(2^61 - 1).

    A function h(x) = ((a·x + b) mod p) mod w with a uniform in [1, p) and b
    uniform in [0, p) is pairwise independent over the field, which is the
    property the CountMin analysis (Cormode & Muthukrishnan 2005) requires of
    each row's hash function. *)

type t
(** An immutable hash function [x ↦ ((a·x + b) mod p) mod w]. *)

val create : Rng.Splitmix.t -> width:int -> t
(** [create g ~width] draws fresh coefficients from [g]; [width] is the range
    size [w]. @raise Invalid_argument if [width <= 0]. *)

val of_coefficients : a:int -> b:int -> width:int -> t
(** [of_coefficients ~a ~b ~width] builds a function with explicit
    coefficients (used by tests to pin hash behaviour, e.g. Example 9 of the
    paper). Coefficients are reduced into the field. *)

val apply : t -> int -> int
(** [apply h x] is h(x) in [\[0, width)]. Negative [x] is first mapped into
    the field by reduction. *)

val width : t -> int
(** Range size [w]. *)

val coefficients : t -> int * int
(** The field coefficients [(a, b)], exposed so experiments can log the coin
    flips that define a run. *)
