let p = (1 lsl 61) - 1

let reduce x =
  let r = (x land p) + (x lsr 61) in
  if r >= p then r - p else r

let add a b = reduce (a + b)

(* Multiply x (< p) by 2^k (k <= 31) modulo p: split off the bits that
   overflow past 2^61 and wrap them around using 2^61 ≡ 1 (mod p). *)
let shift_mod x k =
  let hi = x lsr (61 - k) in
  let lo = (x lsl k) land p in
  reduce (hi + lo)

(* Split each operand into a 30-bit high half and a 31-bit low half so every
   partial product fits in 61 bits, then recombine modulo 2^61 - 1. *)
let mul a b =
  let a_hi = a lsr 31 and a_lo = a land 0x7FFFFFFF in
  let b_hi = b lsr 31 and b_lo = b land 0x7FFFFFFF in
  (* a*b = a_hi*b_hi*2^62 + (a_hi*b_lo + a_lo*b_hi)*2^31 + a_lo*b_lo *)
  let hh = reduce (a_hi * b_hi) in
  let cross = add (reduce (a_hi * b_lo)) (reduce (a_lo * b_hi)) in
  let ll = reduce (a_lo * b_lo) in
  (* 2^62 ≡ 2 (mod p) *)
  add (add (shift_mod hh 1) (shift_mod cross 31)) ll

let mul_add a x b = add (mul a x) b

let random_element g =
  let rec loop () =
    let v = Int64.to_int (Rng.Splitmix.next_int64 g) land ((1 lsl 61) - 1) in
    if v >= p then loop () else v
  in
  loop ()

let random_nonzero g =
  let rec loop () =
    let v = random_element g in
    if v = 0 then loop () else v
  in
  loop ()
