(** A family of [d] independent hash functions with a common range [w].

    This is exactly the "coin flip vector" of the paper's CountMin sketch
    (Section 5): the hash functions are drawn once from the random source and
    thereafter define the deterministic algorithm CM(c#). A family is shared
    between a concurrent implementation and the sequential specification it
    is checked against, so both observe the same coins.

    Rows are normally pairwise-independent {!Universal} functions; tests may
    instead pin arbitrary mappings ({!of_mapping}) to reproduce hand-crafted
    collisions such as Example 9 of the paper. *)

type t

val create : Rng.Splitmix.t -> rows:int -> width:int -> t
(** [create g ~rows ~width] draws [rows] independent pairwise-independent
    functions with range [width].
    @raise Invalid_argument if [rows <= 0] or [width <= 0]. *)

val of_functions : Universal.t array -> t
(** Wrap explicit universal functions.
    @raise Invalid_argument on an empty array or mismatched widths. *)

val of_mapping : width:int -> (int -> int) array -> t
(** [of_mapping ~width fns] builds a family from arbitrary row functions
    (each must map into [\[0, width)]; out-of-range results are reduced
    modulo [width]). Intended for deterministic tests.
    @raise Invalid_argument on an empty array or [width <= 0]. *)

val rows : t -> int
val width : t -> int

val hash : t -> row:int -> int -> int
(** [hash f ~row x] applies the [row]-th function to [x]. *)

val seeded : seed:int64 -> rows:int -> width:int -> t
(** Convenience: a family drawn from a fresh SplitMix64 stream with [seed]. *)

val coefficients : t -> (int * int) array option
(** The per-row field coefficients [(a, b)] when every row is a
    pairwise-independent {!Universal} function, [None] if any row was pinned
    with {!of_mapping}. Serializing these (the wire codecs do) captures the
    coin-flip vector exactly. *)

val of_coefficients : width:int -> (int * int) array -> t
(** Rebuild a family from serialized coefficients; the exact inverse of
    {!coefficients} on universal families.
    @raise Invalid_argument on an empty array or [width <= 0]. *)

val compatible : t -> t -> bool
(** Two families are compatible when they hash identically: physically equal,
    or universal with equal widths, row counts and coefficients. Mergeable
    sketches require compatible families; families built with {!of_mapping}
    are only compatible with themselves. *)
