(** A family of [d] independent hash functions with a common range [w].

    This is exactly the "coin flip vector" of the paper's CountMin sketch
    (Section 5): the hash functions are drawn once from the random source and
    thereafter define the deterministic algorithm CM(c#). A family is shared
    between a concurrent implementation and the sequential specification it
    is checked against, so both observe the same coins.

    Rows are normally pairwise-independent {!Universal} functions; tests may
    instead pin arbitrary mappings ({!of_mapping}) to reproduce hand-crafted
    collisions such as Example 9 of the paper. A third, opt-in mode
    ({!seeded_km}) derives all [d] rows from two base functions by
    Kirsch–Mitzenmacher double hashing, halving-or-better the per-update
    hashing cost on the ingestion hot paths (see docs/PERFORMANCE.md for the
    measured accuracy trade). *)

type t

val create : Rng.Splitmix.t -> rows:int -> width:int -> t
(** [create g ~rows ~width] draws [rows] independent pairwise-independent
    functions with range [width].
    @raise Invalid_argument if [rows <= 0] or [width <= 0]. *)

val of_functions : Universal.t array -> t
(** Wrap explicit universal functions.
    @raise Invalid_argument on an empty array or mismatched widths. *)

val of_mapping : width:int -> (int -> int) array -> t
(** [of_mapping ~width fns] builds a family from arbitrary row functions
    (each must map into [\[0, width)]; out-of-range results are reduced
    modulo [width]). Intended for deterministic tests.
    @raise Invalid_argument on an empty array or [width <= 0]. *)

val rows : t -> int
val width : t -> int

val hash : t -> row:int -> int -> int
(** [hash f ~row x] applies the [row]-th function to [x]. On a double-hashed
    family this evaluates both base functions; loops over all rows should
    use {!probe}/{!probe_col} instead, which share that work. *)

val probe : t -> int -> int
(** [probe f x] performs all row-independent hashing work for [x] once and
    packs it into an immediate int (no allocation). For universal/explicit
    families the pack is [x] itself; for a double-hashed family it carries
    the two base hashes, so a d-row loop costs 2 field evaluations total
    instead of d. Only meaningful as input to {!probe_col} on the same
    family. *)

val probe_col : t -> int -> row:int -> int
(** [probe_col f p ~row] is the column of [row] for the element packed into
    [p] by {!probe}. Invariant: [probe_col f (probe f x) ~row = hash f ~row
    x] for every row — the one-pass update loop and any per-row caller
    always agree. *)

val seeded : seed:int64 -> rows:int -> width:int -> t
(** Convenience: a family drawn from a fresh SplitMix64 stream with [seed]. *)

val seeded_km : seed:int64 -> rows:int -> width:int -> t
(** Kirsch–Mitzenmacher double hashing: draw two base functions h1, h2 from
    a fresh SplitMix64 stream and derive row [i] as
    [(h1 x + i·(1 + h2 x)) mod width] with the stride in [\[1, width)], so
    the [rows] probes of one element are distinct whenever [rows <= width].
    Same seed, same family — byte-for-byte reproducible like {!seeded}.
    Double-hashed families cannot be serialized ({!coefficients} is [None])
    and are only {!compatible} with equal-coefficient KM families.
    @raise Invalid_argument if [rows <= 0], [width <= 0], or
    [width > 2^30] (the packed {!probe} must fit an immediate int). *)

val double_hashed : t -> bool
(** [true] iff the family was built by {!seeded_km}. *)

val coefficients : t -> (int * int) array option
(** The per-row field coefficients [(a, b)] when every row is a
    pairwise-independent {!Universal} function, [None] if any row was pinned
    with {!of_mapping} or the family is double-hashed. Serializing these
    (the wire codecs do) captures the coin-flip vector exactly. *)

val of_coefficients : width:int -> (int * int) array -> t
(** Rebuild a family from serialized coefficients; the exact inverse of
    {!coefficients} on universal families.
    @raise Invalid_argument on an empty array or [width <= 0]. *)

val compatible : t -> t -> bool
(** Two families are compatible when they hash identically: physically equal,
    universal with equal widths, row counts and coefficients, or
    double-hashed with equal widths, row counts and base coefficients.
    Mergeable sketches require compatible families; families built with
    {!of_mapping} are only compatible with themselves. *)
