type t = { a : int; b : int; w : int; mask : int }

(* For power-of-two widths the trailing [mod w] is a bit-mask — same value
   (the field image is non-negative), no integer division on the hash hot
   path. [mask = -1] marks other widths. *)
let mask_of w = if w land (w - 1) = 0 then w - 1 else -1

let create g ~width =
  if width <= 0 then invalid_arg "Universal.create: width must be positive";
  {
    a = Prime_field.random_nonzero g;
    b = Prime_field.random_element g;
    w = width;
    mask = mask_of width;
  }

let of_coefficients ~a ~b ~width =
  if width <= 0 then invalid_arg "Universal.of_coefficients: width must be positive";
  let a = Prime_field.reduce (abs a) and b = Prime_field.reduce (abs b) in
  { a; b; w = width; mask = mask_of width }

let apply h x =
  let x = Prime_field.reduce (x land max_int) in
  let m = Prime_field.mul_add h.a x h.b in
  if h.mask >= 0 then m land h.mask else m mod h.w

let width h = h.w

let coefficients h = (h.a, h.b)
