type t = { a : int; b : int; w : int }

let create g ~width =
  if width <= 0 then invalid_arg "Universal.create: width must be positive";
  { a = Prime_field.random_nonzero g; b = Prime_field.random_element g; w = width }

let of_coefficients ~a ~b ~width =
  if width <= 0 then invalid_arg "Universal.of_coefficients: width must be positive";
  let a = Prime_field.reduce (abs a) and b = Prime_field.reduce (abs b) in
  { a; b; w = width }

let apply h x =
  let x = Prime_field.reduce (x land max_int) in
  Prime_field.mul_add h.a x h.b mod h.w

let width h = h.w

let coefficients h = (h.a, h.b)
