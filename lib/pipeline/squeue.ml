(* The shard-queue seam: one sum type over the two bounded-queue
   implementations so the engine (and anything else that moves elements
   between pipeline domains) selects the transport at construction time
   and pays exactly one well-predicted branch per operation afterwards.

   [`Mutex] is {!Mpsc} — the reference implementation: simple, fair
   enough, blocking waits release the core immediately. [`Lockfree] is
   {!Ring} — CAS cursors on padded atomics, allocation-free hot paths,
   multi-consumer batch pops (the steal substrate). Keeping both behind
   one type is deliberate: the queue-contract property suite runs against
   this module with each constructor, so the two implementations cannot
   drift apart semantically. *)

type impl = [ `Mutex | `Lockfree ]

type 'a t = Mutex of 'a Mpsc.t | Lockfree of 'a Ring.t

let impl_of_string = function
  | "mutex" -> Some `Mutex
  | "lockfree" -> Some `Lockfree
  | _ -> None

let impl_to_string = function `Mutex -> "mutex" | `Lockfree -> "lockfree"

let create ~impl ~capacity =
  match impl with
  | `Mutex -> Mutex (Mpsc.create ~capacity)
  | `Lockfree -> Lockfree (Ring.create ~capacity)

let impl = function Mutex _ -> `Mutex | Lockfree _ -> `Lockfree

let push t x =
  match t with Mutex q -> Mpsc.push q x | Lockfree q -> Ring.push q x

let try_push t x =
  match t with Mutex q -> Mpsc.try_push q x | Lockfree q -> Ring.try_push q x

let pop t = match t with Mutex q -> Mpsc.pop q | Lockfree q -> Ring.pop q

let pop_batch t ~max =
  match t with
  | Mutex q -> Mpsc.pop_batch q ~max
  | Lockfree q -> Ring.pop_batch q ~max

let try_pop_into t buf ~max =
  match t with
  | Mutex q -> Mpsc.try_pop_into q buf ~max
  | Lockfree q -> Ring.try_pop_into q buf ~max

let pop_into t buf ~max =
  match t with
  | Mutex q -> Mpsc.pop_into q buf ~max
  | Lockfree q -> Ring.pop_into q buf ~max

let close t = match t with Mutex q -> Mpsc.close q | Lockfree q -> Ring.close q

let reopen t =
  match t with Mutex q -> Mpsc.reopen q | Lockfree q -> Ring.reopen q

let drain_remaining t =
  match t with
  | Mutex q -> Mpsc.drain_remaining q
  | Lockfree q -> Ring.drain_remaining q

let length t =
  match t with Mutex q -> Mpsc.length q | Lockfree q -> Ring.length q

let length_relaxed t =
  match t with
  | Mutex q -> Mpsc.length_relaxed q
  | Lockfree q -> Ring.length q

let is_closed t =
  match t with Mutex q -> Mpsc.is_closed q | Lockfree q -> Ring.is_closed q
