(** {!Mergeable.S} instances for every wire-codec'd sketch, parameterized by
    the sketch's coins/size so that all deltas of one pipeline share them.
    Apply then feed to {!Engine.Make}:

    {[
      module M = Pipeline.Targets.Countmin (struct
        let seed = 42L
        let rows = 4
        let width = 1024
      end)

      module P = Pipeline.Engine.Make (M)
    ]} *)

module Countmin (_ : sig
  val seed : int64
  val rows : int
  val width : int
end) : Mergeable.S with type t = Sketches.Countmin.t

module Hll (_ : sig
  val seed : int64
  val p : int
end) : Mergeable.S with type t = Sketches.Hyperloglog.t

module Kmv (_ : sig
  val seed : int64
  val k : int
end) : Mergeable.S with type t = Sketches.Kmv.t

module Quantiles (_ : sig
  val seed : int64
  val k : int
end) : Mergeable.S with type t = Sketches.Quantiles.t

module Space_saving (_ : sig
  val capacity : int
end) : Mergeable.S with type t = Sketches.Space_saving.t

(** Each ingested element counts one event (Section 6.2's batched counter as
    the degenerate "sketch"); useful for pipeline plumbing tests where exact
    conservation is checkable. *)
module Counter : Mergeable.S with type t = Sketches.Batched_counter.t
