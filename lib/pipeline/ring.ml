(* Lock-free bounded MPMC ring buffer with per-slot sequence numbers.

   The layout is the classic Vyukov bounded queue (the design Saturn's
   bounded_queue and countless C++ runtimes use): a power-of-two slot
   array, a [tail] cursor producers claim slots from with CAS, a [head]
   cursor consumers claim slots from with CAS, and one sequence number per
   slot that carries the slot's phase:

     seq = pos          slot free, next writable at position [pos]
     seq = pos + 1      slot filled by the push at position [pos]
     seq = pos + size   slot recycled, next writable at position [pos+size]

   A producer CASes [tail] forward only after seeing its slot free, then
   publishes the value with a plain store followed by the seq store — the
   seq is the release fence a consumer acquires. Symmetrically a consumer
   (there can be several: shard owners AND batch thieves pop from the same
   end — see below) first scans the contiguous run of already-published
   seqs from [head], then CASes [head] forward by that run in one shot and
   copies the values out, recycling slots behind it. Claiming only the
   published prefix (rather than textbook claim-then-await) matters on an
   oversubscribed host: a consumer never blocks behind a producer that was
   descheduled between its tail CAS and its seq store — it sees "empty for
   now" and retries instead. Head and tail live in separately padded atomics
   ({!Conc.Padding}) so producers and consumers never false-share; the
   per-slot seqs are intentionally unpadded — batch claiming touches them
   sequentially, so they behave like a streamed array, not hot cells.

   Unlike the textbook queue this one is *bounded twice*: the slot array is
   rounded up to a power of two for mask arithmetic, but the logical
   [capacity] the caller asked for is enforced exactly ([tail - head >=
   capacity] is Full), so swapping it in for the mutex {!Mpsc} never
   changes backpressure semantics.

   Stealing: work-stealing deques (Chase–Lev, the Manticore runtime's
   local deques) give the *owner* a private LIFO end precisely because
   their producer is the owner itself. Our shard queues are multi-producer
   (any feeder pushes into any shard), so the tail end belongs to
   producers and cannot double as the owner's private end. Instead both
   the owner and thieves pop from the head with the same CAS claim —
   "steal" is just a pop by a non-owner, whole batches per CAS. The
   common, uncontended case (no thief) costs the owner one CAS per batch;
   under skew, thieves contend on the head CAS only with each other and
   with the (starved, hence slow) owner. FIFO order per queue holds for
   whoever pops, but with several poppers the *processing* interleaving
   across poppers is unordered — fine for the pipeline, whose merge
   algebra is commutative.

   Blocking: producers on Full and consumers on Empty first spin a short
   budget (cpu_relax), then park on a plain mutex+condition pair. The
   fast path never touches the mutex: wakers broadcast only when the
   padded [waiters] count is non-zero. The no-lost-wakeup argument is the
   usual eventcount one and leans on OCaml atomics being SC: a parker
   (a) increments [waiters] (b) re-checks the queue state and only then
   waits; a waker (c) changes the state (d) reads [waiters]. If (d) reads
   the pre-(a) value then (d) < (a) < (b) in the SC total order, so (b)
   sees the state change from (c) and the parker never sleeps.

   Progress obligations: a producer that CASed [tail] MUST complete the
   value+seq stores (consumers treat the gap as transient emptiness and
   poll it away). That holds here because nothing in the window can raise
   and the engine's chaos kills are exceptions thrown from explicit hook
   points, never asynchronously. *)

type 'a t = {
  mask : int; (* slot-array size - 1 (size is a power of two) *)
  capacity : int; (* logical bound, enforced exactly *)
  seq : int Atomic.t array;
  vals : 'a array; (* plain stores, published/acquired via [seq] *)
  dummy : 'a; (* fills recycled slots so popped values are not retained *)
  tail : int Atomic.t; (* next push position; padded *)
  head : int Atomic.t; (* next pop position; padded *)
  closed : bool Atomic.t; (* padded *)
  waiters : int Atomic.t; (* parked producers + consumers; padded *)
  pm : Mutex.t;
  pc : Condition.t;
}

let spin_budget = 64 (* cpu_relax rounds before parking/yielding *)

let create ~capacity =
  if capacity <= 0 then invalid_arg "Ring.create: capacity must be positive";
  let size =
    let rec up n = if n >= capacity then n else up (n * 2) in
    up 1
  in
  {
    mask = size - 1;
    capacity;
    seq = Array.init size (fun i -> Atomic.make i);
    vals = Array.make size (Obj.magic () : 'a);
    dummy = (Obj.magic () : 'a);
    tail = Conc.Padding.atomic 0;
    head = Conc.Padding.atomic 0;
    closed = Conc.Padding.atomic false;
    waiters = Conc.Padding.atomic 0;
    pm = Mutex.create ();
    pc = Condition.create ();
  }

let size t = t.mask + 1

(* Approximate by construction: head and tail are read at different
   instants, so the result can lag either cursor. Callers that need an
   exact count must quiesce first (the engine's drain does). *)
let length t = max 0 (Atomic.get t.tail - Atomic.get t.head)

let is_closed t = Atomic.get t.closed

(* Broadcast-on-demand: the hot paths only pay an uncontended atomic read.
   Both producer and consumer waiters share one condition — parks are the
   cold path, and a spurious wake just re-checks and re-parks. *)
let wake t =
  if Atomic.get t.waiters > 0 then begin
    Mutex.lock t.pm;
    Condition.broadcast t.pc;
    Mutex.unlock t.pm
  end

(* [park t blocked] sleeps until [blocked] turns false or a waker
   broadcasts. [blocked] must read only atomics (it runs both outside and
   under [pm]). *)
let park t blocked =
  Mutex.lock t.pm;
  Atomic.incr t.waiters;
  (* Re-check AFTER the increment: SC ordering vs. the waker's
     state-change-then-read-waiters makes a lost wakeup impossible. *)
  if blocked () then Condition.wait t.pc t.pm;
  Atomic.decr t.waiters;
  Mutex.unlock t.pm

(* The hot paths below are deliberately written as top-level tail-recursive
   functions over unboxed arguments: a `let rec` nested inside the entry
   point compiles to a heap-allocated closure on every call (the classical
   compiler does not lift it), and the whole point of the ring is a 0 B/op
   push/pop cycle — the bench's allocation audit pins exactly that. *)

let rec push_attempt t x =
  let tail = Atomic.get t.tail in
  if tail - Atomic.get t.head >= t.capacity then
    if Atomic.get t.closed then `Closed else `Full
  else begin
    let i = tail land t.mask in
    let s = Atomic.get t.seq.(i) in
    if s = tail then
      if Atomic.compare_and_set t.tail tail (tail + 1) then begin
        (* We own slot [i] for position [tail]: plain value store,
           released by the seq store. *)
        Array.unsafe_set t.vals i x;
        Atomic.set t.seq.(i) (tail + 1);
        wake t;
        `Ok
      end
      else push_attempt t x (* lost the CAS race: another producer took it *)
    else if s < tail then
      (* The previous lap's value is still in the slot: a consumer
         claimed but has not recycled it yet. Capacity-wise there may
         be room any moment; report Full and let the caller's
         spin/park loop absorb the transient. *)
      if Atomic.get t.closed then `Closed else `Full
    else push_attempt t x (* s > tail: our tail read was stale *)
  end

let try_push t x = if Atomic.get t.closed then `Closed else push_attempt t x

let rec push_loop t x spins =
  match push_attempt t x with
  | `Ok -> true
  | `Closed -> false
  | `Full ->
      if spins < spin_budget then begin
        Domain.cpu_relax ();
        push_loop t x (spins + 1)
      end
      else begin
        park t (fun () ->
            Atomic.get t.tail - Atomic.get t.head >= t.capacity
            && not (Atomic.get t.closed));
        push_loop t x 0
      end

let push t x = if Atomic.get t.closed then false else push_loop t x 0

(* Count the contiguous run of already-published positions starting at
   [head]: claiming only that run means the copy loop after a winning CAS
   never has to await a producer mid-publish — on an oversubscribed host a
   claim-then-await design stalls every consumer behind one descheduled
   producer, while claim-published turns the same situation into a plain
   "empty for now". *)
let rec published_run t head n limit =
  if n >= limit then n
  else
    let pos = head + n in
    if Atomic.get t.seq.(pos land t.mask) = pos + 1 then
      published_run t head (n + 1) limit
    else n

let rec pop_attempt t buf max =
  let head = Atomic.get t.head in
  let avail = Atomic.get t.tail - head in
  if avail <= 0 then
    if not (Atomic.get t.closed) then 0
    else if Atomic.get t.tail = head then -1 (* closed and drained *)
    else pop_attempt t buf max (* racing push completed after the close *)
  else begin
    let n = published_run t head 0 (min max avail) in
    if n = 0 then
      (* Claimed but not yet published: momentarily empty from here.
         The claimant is obligated to finish, so callers just retry. *)
      0
    else if Atomic.compare_and_set t.head head (head + n) then begin
      (* Winning the CAS means no other consumer claimed these positions,
         so the seqs we just saw at pos+1 still stand (only a claimant
         recycles a slot): every value is published, copy without waiting. *)
      for j = 0 to n - 1 do
        let pos = head + j in
        let i = pos land t.mask in
        Array.unsafe_set buf j (Array.unsafe_get t.vals i);
        Array.unsafe_set t.vals i t.dummy;
        Atomic.set t.seq.(i) (pos + t.mask + 1)
      done;
      wake t;
      n
    end
    else pop_attempt t buf max
  end

(* Claim up to [max] published positions with one head CAS and copy them
   out. Runs concurrently with other claimers (owner + thieves) and with
   producers. *)
let try_pop_into t buf ~max =
  if max <= 0 then invalid_arg "Ring.try_pop_into: max must be positive";
  pop_attempt t buf (min max (Array.length buf))

let rec pop_into_loop t buf max spins =
  match pop_attempt t buf max with
  | 0 ->
      if spins < spin_budget then begin
        Domain.cpu_relax ();
        pop_into_loop t buf max (spins + 1)
      end
      else if Atomic.get t.tail - Atomic.get t.head > 0 then begin
        (* Non-empty but nothing published: the pending producer needs the
           core more than we do, so yield rather than park (the park
           predicate is on emptiness and would fall straight through). *)
        Unix.sleepf 0.0;
        pop_into_loop t buf max 0
      end
      else begin
        park t (fun () ->
            Atomic.get t.tail = Atomic.get t.head
            && not (Atomic.get t.closed));
        pop_into_loop t buf max 0
      end
  | n -> n

let pop_into t buf ~max =
  if max <= 0 then invalid_arg "Ring.pop_into: max must be positive";
  pop_into_loop t buf (min max (Array.length buf)) 0

(* List variants, for contract parity with {!Mpsc} (tests, drains). The
   hot paths use the [_into] forms — a list cell per element is exactly
   the allocation the ring exists to avoid. *)
let pop_batch t ~max =
  if max <= 0 then invalid_arg "Ring.pop_batch: max must be positive";
  let buf = Array.make max t.dummy in
  match pop_into t buf ~max with
  | -1 -> []
  | n -> Array.to_list (Array.sub buf 0 n)

let pop t = match pop_batch t ~max:1 with [] -> None | x :: _ -> Some x

let close t =
  Atomic.set t.closed true;
  (* Unconditional broadcast: close must win every park race. *)
  Mutex.lock t.pm;
  Condition.broadcast t.pc;
  Mutex.unlock t.pm

let reopen t =
  Atomic.set t.closed false;
  (* Whatever survived the close is still in the slots, in order: a
     restarted consumer picks up exactly where the dead one left off. *)
  Mutex.lock t.pm;
  Condition.broadcast t.pc;
  Mutex.unlock t.pm

let drain_remaining t =
  let buf = Array.make 64 t.dummy in
  let n = ref 0 in
  let rec go () =
    match try_pop_into t buf ~max:64 with
    | -1 | 0 -> !n
    | k ->
        n := !n + k;
        go ()
  in
  go ()
