(** The contract a sketch must meet to ride the sharded ingestion pipeline.

    A [t] plays two roles: the {e shard-local delta} each worker accumulates
    (born empty via [create], fed by [update], shipped as a {!Wire.Codec}
    blob), and the {e global sketch} the merger folds deltas into with
    [merge]. The pipeline is correct for any summary where merge is
    associative and commutative with [create ()] as identity — the
    "mergeable summaries" algebra (Agarwal et al.) that every sketch in this
    repository satisfies; the merge-algebra property tests pin it down.

    [encode]/[decode] put the wire codecs on the hot path: every delta a
    worker ships to the merger is a versioned, checksummed blob, so codec
    bugs surface immediately as decode failures in the pipeline stats rather
    than lying dormant until a first networked deployment. *)

module type S = sig
  type t

  val name : string
  (** Short human-readable sketch name, for reports. *)

  val create : unit -> t
  (** A fresh empty delta. All deltas (and the global) must share hash
      parameters so that [merge] never rejects a sibling. *)

  val update : t -> int -> unit
  (** Fold one stream element into a delta. *)

  val update_many : t -> int -> count:int -> unit
  (** Fold [count] occurrences of one element into a delta, equivalent to
      [count] calls to [update] but allowed to be (much) cheaper — this is
      what the engine's combining buffer rides: a batch's duplicate keys
      are aggregated shard-locally and folded in one call each.
      Duplicate-insensitive sketches treat any [count > 0] as a single
      [update]; [count = 0] is a no-op.
      @raise Invalid_argument if [count < 0]. *)

  val merge : t -> t -> t
  (** Combine two summaries; neither input is mutated.
      @raise Invalid_argument on incompatible parameters (a pipeline bug —
      all deltas come from [create]). *)

  val encode : t -> Bytes.t
  (** Serialize a delta for the merger queue. *)

  val decode : Bytes.t -> (t, Wire.Codec.error) result
  (** Deserialize; never raises. A [Error] at the merger counts as a
      decode failure in the pipeline stats (and loses that delta). *)
end
