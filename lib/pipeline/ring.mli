(** Lock-free bounded MPMC ring with per-slot sequence numbers.

    The contention-free twin of {!Mpsc}: same bounded-queue contract
    (blocking {!push} backpressure, {!close}/{!reopen} with backlog
    preservation, batch pops), but producers claim slots by CAS on a
    padded tail cursor and consumers claim whole runs by CAS on a padded
    head cursor — no mutex anywhere on the hot path, 0 bytes allocated
    per element through {!try_push}/{!try_pop_into}. Multiple concurrent
    consumers are safe by construction, which is what the engine's batch
    work-stealing is built on: a "steal" is a {!try_pop_into} issued by a
    non-owner shard worker.

    Blocking variants spin a short budget then park on a condition
    variable, so oversubscribed feeders release the core instead of
    spinning — see ring.ml for the memory-ordering argument and
    docs/PERFORMANCE.md for the slot-layout diagram.

    Element values are stored in a plain array and published through the
    slot's atomic sequence number (release on push, acquire on pop). *)

type 'a t

val create : capacity:int -> 'a t
(** The slot array is rounded up to a power of two but [capacity] itself
    is enforced exactly, matching {!Mpsc} backpressure semantics.
    @raise Invalid_argument if [capacity <= 0]. *)

val push : 'a t -> 'a -> bool
(** Spin-then-park while full; [false] iff the queue is (or becomes)
    closed — the element was not enqueued. Any number of producers. *)

val try_push : 'a t -> 'a -> [ `Ok | `Full | `Closed ]
(** Non-blocking, lock-free, allocation-free. [`Full] may be transient
    (a claimed-but-not-yet-recycled slot): callers that must enqueue use
    {!push}. *)

val try_pop_into : 'a t -> 'a array -> max:int -> int
(** Claim up to [min max (Array.length buf)] elements with one CAS and
    copy them into [buf.(0..n-1)], FIFO. Returns the count: [0] means
    empty-but-open, [-1] means closed and drained. Safe under any number
    of concurrent callers — this is the steal operation. Allocation-free.
    @raise Invalid_argument if [max <= 0]. *)

val pop_into : 'a t -> 'a array -> max:int -> int
(** Blocking {!try_pop_into}: spin-then-park while empty and open.
    Returns [n > 0], or [-1] iff closed and drained. *)

val pop : 'a t -> 'a option
(** Blocking single pop; [None] iff closed and drained. *)

val pop_batch : 'a t -> max:int -> 'a list
(** Blocking batch pop as a list — contract parity with {!Mpsc}; the
    engine's hot path uses {!pop_into} instead (lists cost a cell per
    element). [[]] iff closed and drained.
    @raise Invalid_argument if [max <= 0]. *)

val close : 'a t -> unit
(** Idempotent. Producers fail fast; consumers drain the backlog then see
    the end mark. Wakes every parked producer and consumer. *)

val reopen : 'a t -> unit
(** Undo {!close}: the backlog queued at close time is still in the
    slots, in order — the supervisor hands a crashed shard's backlog to
    the restarted worker through this. Idempotent. *)

val drain_remaining : 'a t -> int
(** Discard whatever is queued and return the count. Intended for
    quiesced queues (the engine calls it after joining workers); under
    concurrent producers the count is a snapshot, not a fixpoint. *)

val length : 'a t -> int
(** Approximate by design: head and tail are read at different instants
    (documented relaxed read — exact only at quiescence). Never negative. *)

val size : 'a t -> int
(** Physical slot count (the rounded-up power of two). *)

val is_closed : 'a t -> bool
