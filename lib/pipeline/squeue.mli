(** Queue-implementation selector: the bounded-MPSC contract of {!Mpsc}
    dispatching over either the mutex reference implementation or the
    lock-free {!Ring}, chosen at {!create} time.

    The engine routes every shard queue and the merger queue through this
    seam (its [?queue] knob); the queue-contract test suite instantiates
    it with both constructors so the implementations stay behaviourally
    interchangeable. Operation semantics are documented on {!Mpsc} and
    {!Ring}; the only divergences are documented relaxations of the
    lock-free side: {!length} is approximate for [`Lockfree], and with
    several concurrent consumers (stealing) per-queue FIFO holds for the
    union of pops but not for any single consumer's view. *)

type impl = [ `Mutex | `Lockfree ]

type 'a t

val create : impl:impl -> capacity:int -> 'a t
(** @raise Invalid_argument if [capacity <= 0]. *)

val impl : 'a t -> impl

val impl_of_string : string -> impl option
(** ["mutex"] / ["lockfree"] — the CLI spelling. *)

val impl_to_string : impl -> string

val push : 'a t -> 'a -> bool
val try_push : 'a t -> 'a -> [ `Ok | `Full | `Closed ]
val pop : 'a t -> 'a option
val pop_batch : 'a t -> max:int -> 'a list

val try_pop_into : 'a t -> 'a array -> max:int -> int
(** Non-blocking batch pop into a caller-owned buffer ([0] = empty,
    [-1] = closed and drained). Safe from any domain for both
    implementations — the steal operation. Allocation-free. *)

val pop_into : 'a t -> 'a array -> max:int -> int
(** Blocking {!try_pop_into} ([n > 0], or [-1] iff closed and drained). *)

val close : 'a t -> unit
val reopen : 'a t -> unit
val drain_remaining : 'a t -> int

val length : 'a t -> int
(** Exact for [`Mutex]; approximate (relaxed cursor reads) for
    [`Lockfree]. *)

val length_relaxed : 'a t -> int
(** Approximate for both: never takes the lock, never contends. *)

val is_closed : 'a t -> bool
