type 'a t = {
  buf : 'a option array;
  capacity : int;
  mutable head : int; (* index of the next element to pop *)
  mutable len : int;
  mutable closed : bool;
  m : Mutex.t;
  not_empty : Condition.t;
  not_full : Condition.t;
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Mpsc.create: capacity must be positive";
  {
    buf = Array.make capacity None;
    capacity;
    head = 0;
    len = 0;
    closed = false;
    m = Mutex.create ();
    not_empty = Condition.create ();
    not_full = Condition.create ();
  }

let unsafe_put t x =
  t.buf.((t.head + t.len) mod t.capacity) <- Some x;
  t.len <- t.len + 1

let push t x =
  Mutex.lock t.m;
  let rec go () =
    if t.closed then false
    else if t.len = t.capacity then begin
      Condition.wait t.not_full t.m;
      go ()
    end
    else begin
      unsafe_put t x;
      Condition.signal t.not_empty;
      true
    end
  in
  let ok = go () in
  Mutex.unlock t.m;
  ok

let try_push t x =
  Mutex.lock t.m;
  let r =
    if t.closed then `Closed
    else if t.len = t.capacity then `Full
    else begin
      unsafe_put t x;
      Condition.signal t.not_empty;
      `Ok
    end
  in
  Mutex.unlock t.m;
  r

let pop_batch t ~max =
  if max <= 0 then invalid_arg "Mpsc.pop_batch: max must be positive";
  Mutex.lock t.m;
  while t.len = 0 && not t.closed do
    Condition.wait t.not_empty t.m
  done;
  let n = min max t.len in
  let items = ref [] in
  for _ = 1 to n do
    (match t.buf.(t.head) with
    | Some x -> items := x :: !items
    | None -> assert false);
    t.buf.(t.head) <- None;
    t.head <- (t.head + 1) mod t.capacity;
    t.len <- t.len - 1
  done;
  if n > 0 then Condition.broadcast t.not_full;
  Mutex.unlock t.m;
  List.rev !items

let pop t = match pop_batch t ~max:1 with [] -> None | x :: _ -> Some x

(* Array-based pops: same semantics as [pop_batch] but writing into a
   caller-owned buffer, so steady-state consumption allocates nothing.
   Because every consumer runs under the queue mutex these are also safe
   for multiple concurrent consumers — which is how the engine's batch
   stealing works against the mutex implementation. *)

let unsafe_take_into t buf n =
  for j = 0 to n - 1 do
    (match t.buf.(t.head) with
    | Some x -> buf.(j) <- x
    | None -> assert false);
    t.buf.(t.head) <- None;
    t.head <- (t.head + 1) mod t.capacity;
    t.len <- t.len - 1
  done;
  if n > 0 then Condition.broadcast t.not_full

let try_pop_into t buf ~max =
  if max <= 0 then invalid_arg "Mpsc.try_pop_into: max must be positive";
  Mutex.lock t.m;
  let n = min (min max (Array.length buf)) t.len in
  let r = if n = 0 then if t.closed then -1 else 0 else n in
  unsafe_take_into t buf n;
  Mutex.unlock t.m;
  r

let pop_into t buf ~max =
  if max <= 0 then invalid_arg "Mpsc.pop_into: max must be positive";
  Mutex.lock t.m;
  while t.len = 0 && not t.closed do
    Condition.wait t.not_empty t.m
  done;
  let n = min (min max (Array.length buf)) t.len in
  let r = if n = 0 then -1 (* closed and drained *) else n in
  unsafe_take_into t buf n;
  Mutex.unlock t.m;
  r

let close t =
  Mutex.lock t.m;
  t.closed <- true;
  Condition.broadcast t.not_empty;
  Condition.broadcast t.not_full;
  Mutex.unlock t.m

let reopen t =
  Mutex.lock t.m;
  t.closed <- false;
  (* Whatever survived the close is still queued, in order: a restarted
     consumer picks up exactly where the dead one left off. *)
  if t.len > 0 then Condition.broadcast t.not_empty;
  if t.len < t.capacity then Condition.broadcast t.not_full;
  Mutex.unlock t.m

let drain_remaining t =
  Mutex.lock t.m;
  let n = t.len in
  for _ = 1 to n do
    t.buf.(t.head) <- None;
    t.head <- (t.head + 1) mod t.capacity;
    t.len <- t.len - 1
  done;
  if n > 0 then Condition.broadcast t.not_full;
  Mutex.unlock t.m;
  n

let length t =
  Mutex.lock t.m;
  let n = t.len in
  Mutex.unlock t.m;
  n

(* Unsynchronized read of [len]: immediates cannot tear, so this returns
   *some* recently written length — approximate, monotone in neither
   direction. The stats path uses it so scrapes and ingest-side
   depth tracking never contend with the consumer's lock. *)
let length_relaxed t = t.len

let is_closed t =
  Mutex.lock t.m;
  let c = t.closed in
  Mutex.unlock t.m;
  c
