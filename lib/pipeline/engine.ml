(* Supervision policy: how the watchdog treats a dead shard worker. Lives
   outside the functor so callers can build configs without naming a sketch. *)
type supervisor = {
  max_restarts : int; (* per shard; beyond it the shard is permanently shed *)
  backoff_base : float; (* seconds; doubles per consecutive restart *)
  backoff_cap : float;
  poll_interval : float; (* watchdog scan period *)
  seed : int64; (* backoff jitter *)
}

let default_supervisor =
  {
    max_restarts = 5;
    backoff_base = 0.002;
    backoff_cap = 0.05;
    poll_interval = 0.0005;
    seed = 0xD1EDL;
  }

module Make (M : Mergeable.S) = struct
  type delta = {
    shard : int;
    seq : int; (* per-incarnation flush sequence number *)
    weight : int; (* stream items summarized in the blob *)
    born : float; (* encode time, for merge-lag percentiles *)
    ctx : Obs.Span.context; (* trace context, Span.zero for untraced deltas *)
    blob : Bytes.t;
  }

  type shard = {
    q : int Squeue.t;
    enqueued : int Atomic.t;
    dropped : int Atomic.t;
    consumed : int Atomic.t;
    flushed_items : int Atomic.t;
    flushes : int Atomic.t;
    max_depth : int Atomic.t;
    alive : bool Atomic.t;
    failed : exn option Atomic.t;
    restarts : int Atomic.t;
    shed : bool Atomic.t; (* permanently degraded: restart cap exceeded *)
    last_error : string option Atomic.t;
    beats : int Atomic.t; (* worker heartbeat, one per batch loop *)
    coalesced : int Atomic.t; (* updates folded away by the combining buffer *)
    steals : int Atomic.t; (* items this worker stole from other shards *)
    stolen_batches : int Atomic.t; (* steal operations by this worker *)
    parks : int Atomic.t; (* idle waits: nothing local, nothing stealable *)
    (* One-slot mailbox for a sampled batch's trace context: [trace_mark]
       stores (ctx, mark time) when a traced key lands in this shard's
       queue, and the worker's next flush claims it — the span covers
       queue residency plus fold, for either queue implementation. One
       slot suffices at 1/sample_every tracing; a second mark before the
       next flush just replaces the first (lossy, like the trace rings). *)
    pending : (Obs.Span.context * int) option Atomic.t;
  }

  type shard_stats = {
    enqueued : int;
    dropped : int;
    consumed : int;
    flushed_items : int;
    flushes : int;
    max_depth : int;
    alive : bool;
    restarts : int;
    shed : bool;
    last_error : string option;
    beats : int;
    coalesced : int;
    steals : int;
    stolen_batches : int;
    parks : int;
  }

  type stats = {
    shards : shard_stats array;
    merges : int;
    decode_failures : int;
    published : int;
    epoch : int;
    merge_lag : float array; (* seconds, one sample per merge *)
  }

  type t = {
    shards : shard array;
    mq : delta Squeue.t;
    batch : int;
    steal : bool; (* idle workers rebalance batches from loaded shards *)
    combine : bool; (* aggregate duplicate keys per batch before updating *)
    on_tick : (shard:int -> unit) option;
    on_merge :
      (ctx:Obs.Span.context -> epoch:int -> weight:int -> blob:Bytes.t -> unit)
      option;
    checkpoint_every : int; (* 0 = no checkpoints *)
    on_checkpoint : (epoch:int -> published:int -> blob:Bytes.t -> unit) option;
    gm : Mutex.t; (* guards global/epoch/published/lags *)
    mutable global : M.t;
    mutable epoch : int;
    mutable published : int;
    mutable lags : float list;
    merges : int Atomic.t;
    decode_failures : int Atomic.t;
    merger_failed : exn option Atomic.t;
    lag_timer : Obs.Timer.t option; (* merge-lag quantiles, observed per merge *)
    trace : Obs.Trace.t option; (* lanes: worker i -> i, merger -> n, watchdog -> n+1 *)
    tracer : Obs.Tracer.t option; (* span sink for queue/merge stages *)
    rec_ : (int, int, int) Conc.Recorder.t;
    mutable workers : unit Domain.t array;
    mutable merger : unit Domain.t option;
    mutable watchdog : unit Domain.t option;
    stopping : bool Atomic.t; (* tells the watchdog a drain has begun *)
    dm : Mutex.t; (* serializes drain: concurrent callers both return *)
    mutable drained : bool;
    (* Queue-depth snapshot for the stats path: refreshed at most once per
       tick (TTL below) under [depth_m], so a metrics scrape costs one
       length sweep total instead of one consumer-contending read per
       shard gauge. *)
    depth_m : Mutex.t;
    depths : int array;
    mutable depths_at : float;
  }

  (* One refresh serves a whole scrape: every per-shard gauge lands within
     this window, and queue depth is an operational signal, not an exact
     invariant (Squeue.length is already approximate for the ring). *)
  let depth_ttl = 0.02

  let queue_depth t i =
    Mutex.lock t.depth_m;
    let now = Unix.gettimeofday () in
    if now -. t.depths_at > depth_ttl then begin
      Array.iteri (fun j (s : shard) -> t.depths.(j) <- Squeue.length s.q)
        t.shards;
      t.depths_at <- now
    end;
    let d = t.depths.(i) in
    Mutex.unlock t.depth_m;
    d

  let shard_count t = Array.length t.shards

  (* SplitMix64-style finalizer (truncated to native int) so adjacent
     elements spread across shards. *)
  let shard_of t x =
    let h = x * 0x1E3779B97F4A7C15 in
    let h = (h lxor (h lsr 30)) * 0x3F58476D1CE4E5B9 in
    (h lxor (h lsr 27)) land max_int mod shard_count t

  let worker t i =
    let s = t.shards.(i) in
    let n_shards = Array.length t.shards in
    (* Worker-private pop buffer: both local pops and steals land here, so
       the steady-state consume path allocates nothing (the ring's
       [try_pop_into] is allocation-free; the mutex queue only boxes on
       the push side). *)
    let buf = Array.make t.batch 0 in
    let local = ref (M.create ()) in
    let count = ref 0 in
    let seq = ref 0 in
    (* Combining buffer: one worker-private table, reset per batch. Keys a
       batch repeats cost one [update_many] instead of k sketch updates —
       the win grows with stream skew, and per-batch scoping keeps the
       table small and the flush cadence (hence the IVL envelope)
       unchanged. *)
    let tbl = if t.combine then Some (Hashtbl.create 64) else None in
    let absorb n =
      (match tbl with
      | None ->
          for j = 0 to n - 1 do
            M.update !local (Array.unsafe_get buf j)
          done
      | Some tbl ->
          for j = 0 to n - 1 do
            let x = Array.unsafe_get buf j in
            match Hashtbl.find_opt tbl x with
            | Some c -> Hashtbl.replace tbl x (c + 1)
            | None -> Hashtbl.add tbl x 1
          done;
          let distinct = Hashtbl.length tbl in
          Hashtbl.iter (fun x c -> M.update_many !local x ~count:c) tbl;
          Hashtbl.reset tbl;
          ignore (Atomic.fetch_and_add s.coalesced (n - distinct)));
      count := !count + n;
      ignore (Atomic.fetch_and_add s.consumed n)
    in
    let flush () =
      if !count > 0 then begin
        (* Claim any traced batch that landed here since the last flush and
           close its queue-residency span. A stolen traced batch is folded
           by the thief while the mark stays on the victim's shard — the
           victim's next flush claims it, an accepted approximation (the
           span still ends at a flush that ships the sampled window). *)
        let ctx =
          match Atomic.exchange s.pending None with
          | None -> Obs.Span.zero
          | Some (ctx, mark_ns) -> (
              match t.tracer with
              | None -> ctx
              | Some tr ->
                  let sid =
                    Obs.Tracer.record tr ~ctx ~stage:"queue" ~start_ns:mark_ns
                      ~end_ns:(Obs.Tracer.now_ns ())
                  in
                  Obs.Span.with_parent ctx sid)
        in
        let blob = M.encode !local in
        incr seq;
        let d =
          { shard = i; seq = !seq; weight = !count;
            born = Unix.gettimeofday (); ctx; blob }
        in
        if Squeue.push t.mq d then begin
          ignore (Atomic.fetch_and_add s.flushed_items !count);
          ignore (Atomic.fetch_and_add s.flushes 1);
          match t.trace with
          | Some tr -> Obs.Trace.emit tr ~lane:i ~tag:"flush" ~a:d.weight ~b:d.seq
          | None -> ()
        end;
        local := M.create ();
        count := 0
      end
    in
    (* Batch rebalancing: an idle worker scans the other shards' relaxed
       queue lengths, picks the deepest backlog, and claims up to half of
       it (capped at one batch) with a single steal. Stolen items are
       folded into the THIEF's delta and counted in the thief's
       consumed/flushed — per-shard ingest accounting (enqueued) stays on
       the victim, so conservation becomes a cross-shard sum under
       stealing (Σ flushed = Σ enqueued), which is what the soak and CLI
       verdicts check. Stealing from a dead shard's still-closed queue is
       deliberate: it rescues backlog the supervisor would otherwise make
       the restarted incarnation replay. *)
    let try_steal () =
      let best = ref (-1) and best_len = ref 0 in
      for j = 0 to n_shards - 1 do
        if j <> i then begin
          let l = Squeue.length_relaxed t.shards.(j).q in
          if l > !best_len then begin
            best := j;
            best_len := l
          end
        end
      done;
      if !best < 0 then 0
      else begin
        let want = min t.batch (max 1 (!best_len / 2)) in
        let k = Squeue.try_pop_into t.shards.(!best).q buf ~max:want in
        if k > 0 then begin
          ignore (Atomic.fetch_and_add s.steals k);
          ignore (Atomic.fetch_and_add s.stolen_batches 1);
          absorb k;
          k
        end
        else 0
      end
    in
    let rec loop () =
      ignore (Atomic.fetch_and_add s.beats 1);
      (match t.on_tick with Some f -> f ~shard:i | None -> ());
      let n =
        if t.steal then Squeue.try_pop_into s.q buf ~max:t.batch
        else
          (* No stealing: count the would-block, then park exactly like
             the pre-ring engine did. *)
          match Squeue.try_pop_into s.q buf ~max:t.batch with
          | 0 ->
              ignore (Atomic.fetch_and_add s.parks 1);
              Squeue.pop_into s.q buf ~max:t.batch
          | n -> n
      in
      if n > 0 then begin
        absorb n;
        if !count >= t.batch then flush ();
        loop ()
      end
      else if n = 0 then begin
        (* Steal mode, own queue empty and open: rebalance, or nap briefly
           (bounded, so backlogs building on OTHER shards are noticed —
           a condition park on our own queue would sleep through them). *)
        if try_steal () > 0 then begin
          if !count >= t.batch then flush ()
        end
        else begin
          ignore (Atomic.fetch_and_add s.parks 1);
          Unix.sleepf 1e-4
        end;
        loop ()
      end
      else flush () (* closed and drained: final flush, then exit *)
    in
    (* On any death: close the queue FIRST, then clear [alive]. The watchdog
       triggers on [alive = false], so this order guarantees its reopen
       happens after our close — never the other way around, which would
       leave a freshly restarted worker blocked on a closed queue. Closing
       also turns ingest into fail-fast drops while the shard is down. *)
    let trace_death () =
      (* [count] items were absorbed but never flushed: the crash's loss. *)
      match t.trace with
      | Some tr -> Obs.Trace.emit tr ~lane:i ~tag:"death" ~a:!count ~b:!seq
      | None -> ()
    in
    try loop () with
    | Conc.Chaos.Killed _ as e ->
        (* Crash-stop: the delta under accumulation is lost (consumed >
           flushed records how much). *)
        Atomic.set s.last_error (Some (Printexc.to_string e));
        trace_death ();
        Squeue.close s.q;
        Atomic.set s.alive false
    | e ->
        Atomic.set s.failed (Some e);
        Atomic.set s.last_error (Some (Printexc.to_string e));
        trace_death ();
        Squeue.close s.q;
        Atomic.set s.alive false

  (* The merger is the pipeline's only writer of the global sketch: decode
     the blob, fold it in under the mutex, stamp a new epoch. The recorded
     update op brackets exactly the merge critical section, so the history
     seen by the envelope checker is the pipeline's published state. The
     durability hooks run after the critical section, still in the merger's
     domain: epochs reach the WAL strictly in order without holding the
     mutex across disk writes (write-behind — a crash between merge and
     append loses that record, which recovery's envelope absorbs). *)
  let merger t =
    let dom = shard_count t in
    let rec loop () =
      match Squeue.pop t.mq with
      | None -> ()
      | Some d ->
          (match M.decode d.blob with
          | Error _ -> ignore (Atomic.fetch_and_add t.decode_failures 1)
          | Ok delta ->
              let stamped = ref 0 in
              let lag = ref 0.0 in
              Conc.Recorder.record_update t.rec_ ~domain:dom ~obj:0 d.weight
                (fun () ->
                  Mutex.lock t.gm;
                  t.global <- M.merge t.global delta;
                  t.epoch <- t.epoch + 1;
                  t.published <- t.published + d.weight;
                  lag := Unix.gettimeofday () -. d.born;
                  t.lags <- !lag :: t.lags;
                  stamped := t.epoch;
                  Mutex.unlock t.gm);
              ignore (Atomic.fetch_and_add t.merges 1);
              (match t.lag_timer with
              | Some tm -> Obs.Timer.observe tm !lag
              | None -> ());
              (match t.trace with
              | Some tr ->
                  Obs.Trace.emit tr ~lane:dom ~tag:"merge" ~a:!stamped
                    ~b:d.weight
              | None -> ());
              (* The merge span starts at the delta's encode time, so it
                 covers merger-queue residency plus the fold itself —
                 the same window [lag_timer] measures. *)
              let ctx_out =
                match t.tracer with
                | Some tr when not (Obs.Span.is_zero d.ctx) ->
                    let sid =
                      Obs.Tracer.record tr ~ctx:d.ctx ~stage:"merge"
                        ~start_ns:(int_of_float (d.born *. 1e9))
                        ~end_ns:(Obs.Tracer.now_ns ())
                    in
                    Obs.Span.with_parent d.ctx sid
                | _ -> d.ctx
              in
              (match t.on_merge with
              | Some f ->
                  f ~ctx:ctx_out ~epoch:!stamped ~weight:d.weight ~blob:d.blob
              | None -> ());
              if
                t.checkpoint_every > 0
                && !stamped mod t.checkpoint_every = 0
                && t.on_checkpoint <> None
              then begin
                Mutex.lock t.gm;
                let blob = M.encode t.global
                and epoch = t.epoch
                and published = t.published in
                Mutex.unlock t.gm;
                (match t.trace with
                | Some tr ->
                    Obs.Trace.emit tr ~lane:dom ~tag:"checkpoint" ~a:epoch
                      ~b:published
                | None -> ());
                match t.on_checkpoint with
                | Some f -> f ~epoch ~published ~blob
                | None -> ()
              end);
          loop ()
    in
    try loop () with e -> Atomic.set t.merger_failed (Some e)

  (* The watchdog: detect dead workers (their heartbeat loop has exited and
     cleared [alive]) and restart them with capped exponential backoff plus
     jitter. A shard that keeps dying runs out of restart budget and is
     permanently shed — its queue stays closed, ingest fail-fast drops — with
     the reason kept in [last_error]. *)
  let watchdog t cfg =
    let g = Rng.Splitmix.create cfg.seed in
    let n = shard_count t in
    let trace_event tag ~a ~b =
      match t.trace with
      | Some tr -> Obs.Trace.emit tr ~lane:(n + 1) ~tag ~a ~b
      | None -> ()
    in
    let restart_at = Array.make n None in
    while not (Atomic.get t.stopping) do
      Unix.sleepf cfg.poll_interval;
      for i = 0 to n - 1 do
        let s = t.shards.(i) in
        if
          (not (Atomic.get s.alive))
          && (not (Atomic.get s.shed))
          && not (Atomic.get t.stopping)
        then begin
          match restart_at.(i) with
          | None ->
              let r = Atomic.get s.restarts in
              if r >= cfg.max_restarts then begin
                Atomic.set s.last_error
                  (Some
                     (Printf.sprintf
                        "shed: restart cap %d exceeded (last error: %s)"
                        cfg.max_restarts
                        (Option.value ~default:"unknown"
                           (Atomic.get s.last_error))));
                Atomic.set s.shed true;
                trace_event "shed" ~a:i ~b:r
              end
              else begin
                let backoff =
                  Float.min cfg.backoff_cap
                    (cfg.backoff_base *. (2.0 ** float_of_int r))
                in
                (* jitter in [0.5, 1.5) de-synchronizes mass restarts *)
                let jitter = 0.5 +. Rng.Splitmix.next_float g in
                restart_at.(i) <-
                  Some (Unix.gettimeofday () +. (backoff *. jitter))
              end
          | Some at when Unix.gettimeofday () >= at ->
              restart_at.(i) <- None;
              (* The old incarnation has exited; reap it before respawning. *)
              Domain.join t.workers.(i);
              let r = Atomic.fetch_and_add s.restarts 1 in
              trace_event "restart" ~a:i ~b:(r + 1);
              Squeue.reopen s.q;
              Atomic.set s.alive true;
              t.workers.(i) <- Domain.spawn (fun () -> worker t i)
          | Some _ -> ()
        end
      done
    done

  (* Exporting the pipeline is pure registration: every series below is a
     scrape-time callback over counters the engine already maintains, so
     instrumentation costs the hot paths nothing. The one subtlety is the
     envelope-width gauge: [published] must be read under the merge mutex
     BEFORE summing per-shard [enqueued] — enqueued only grows, so the gap
     [e - p] computed in that order never understates how far a concurrent
     [read_total] can trail the true total (docs/OBSERVABILITY.md proves
     this is the live v_max - v_min freshness bound once ingest quiesces). *)
  let register_metrics t reg =
    let sum f =
      Array.fold_left (fun acc s -> acc + Atomic.get (f s)) 0 t.shards
    in
    let counter name help f = Obs.Registry.counter_fn reg ~help name f in
    let gauge name help f = Obs.Registry.gauge_fn reg ~help name f in
    counter "pipeline_ingested_total" "Elements accepted into shard queues"
      (fun () -> sum (fun (s : shard) -> s.enqueued));
    counter "pipeline_dropped_total"
      "Elements shed: dead-worker queue, try_ingest full, or drain leftovers"
      (fun () -> sum (fun (s : shard) -> s.dropped));
    counter "pipeline_consumed_total" "Elements folded into shard-local deltas"
      (fun () -> sum (fun (s : shard) -> s.consumed));
    counter "pipeline_flushed_items_total" "Elements shipped to the merger"
      (fun () -> sum (fun (s : shard) -> s.flushed_items));
    counter "pipeline_coalesced_total"
      "Sketch updates folded away by the combining buffers" (fun () ->
        sum (fun (s : shard) -> s.coalesced));
    counter "pipeline_restarts_total" "Supervisor restarts across all shards"
      (fun () -> sum (fun (s : shard) -> s.restarts));
    counter "pipeline_merges_total" "Deltas folded into the global sketch"
      (fun () -> Atomic.get t.merges);
    counter "pipeline_decode_failures_total"
      "Blobs the merger could not decode" (fun () ->
        Atomic.get t.decode_failures);
    counter "pipeline_published_total"
      "Total weight merged into the published sketch" (fun () ->
        Mutex.lock t.gm;
        let p = t.published in
        Mutex.unlock t.gm;
        p);
    gauge "pipeline_epoch" "Merge counter stamping every query snapshot"
      (fun () ->
        Mutex.lock t.gm;
        let e = t.epoch in
        Mutex.unlock t.gm;
        float_of_int e);
    gauge "pipeline_shed_shards" "Shards permanently degraded to shedding"
      (fun () ->
        float_of_int
          (Array.fold_left
             (fun acc (s : shard) -> if Atomic.get s.shed then acc + 1 else acc)
             0 t.shards));
    gauge "pipeline_envelope_width"
      "Live IVL freshness gap: accepted weight not yet published" (fun () ->
        Mutex.lock t.gm;
        let p = t.published in
        Mutex.unlock t.gm;
        let e = sum (fun (s : shard) -> s.enqueued) in
        float_of_int (max 0 (e - p)));
    Array.iteri
      (fun i (s : shard) ->
        let labels = [ ("shard", string_of_int i) ] in
        let scounter name help f =
          Obs.Registry.counter_fn reg ~labels ~help name (fun () ->
              Atomic.get (f s))
        in
        Obs.Registry.gauge_fn reg ~labels
          ~help:"Current shard queue occupancy (TTL-cached snapshot)"
          "pipeline_queue_depth" (fun () -> float_of_int (queue_depth t i));
        Obs.Registry.counter_fn reg ~labels
          ~help:"High-water queue depth observed at ingest"
          "pipeline_queue_max_depth" (fun () -> Atomic.get s.max_depth);
        Obs.Registry.gauge_fn reg ~labels ~help:"1 if the shard worker is up"
          "pipeline_shard_alive" (fun () ->
            if Atomic.get s.alive then 1.0 else 0.0);
        Obs.Registry.gauge_fn reg ~labels
          ~help:"1 if the shard is permanently shed" "pipeline_shard_shed"
          (fun () -> if Atomic.get s.shed then 1.0 else 0.0);
        scounter "pipeline_shard_enqueued_total"
          "Elements accepted into this shard's queue" (fun s -> s.enqueued);
        scounter "pipeline_shard_dropped_total" "Elements this shard shed"
          (fun s -> s.dropped);
        scounter "pipeline_shard_consumed_total"
          "Elements this shard folded into deltas" (fun s -> s.consumed);
        scounter "pipeline_shard_flushed_items_total"
          "Elements this shard shipped to the merger" (fun s ->
            s.flushed_items);
        scounter "pipeline_shard_flushes_total" "Blobs this shard shipped"
          (fun s -> s.flushes);
        scounter "pipeline_shard_coalesced_total"
          "Updates this shard's combining buffer folded away" (fun s ->
            s.coalesced);
        scounter "pipeline_shard_restarts_total"
          "Supervisor restarts of this shard's worker" (fun s -> s.restarts);
        scounter "pipeline_shard_steals_total"
          "Elements this worker stole from other shards' queues" (fun s ->
            s.steals);
        scounter "pipeline_shard_stolen_batches_total"
          "Steal operations performed by this worker" (fun s ->
            s.stolen_batches);
        scounter "pipeline_shard_parks_total"
          "Idle waits: no local work and nothing stealable" (fun s -> s.parks))
      t.shards

  let create ?(queue = `Mutex) ?steal ?(queue_capacity = 1024) ?(batch = 512)
      ?(combine = false) ?on_tick ?on_merge ?(checkpoint_every = 0)
      ?on_checkpoint ?supervisor ?metrics ?trace ?tracer ?initial ~shards () =
    (* Stealing defaults on exactly when the lock-free ring is selected:
       the ring's multi-consumer pops make steals cheap, and without them
       a skewed trace pins one shard while the others spin empty. *)
    let steal = match steal with Some b -> b | None -> queue = `Lockfree in
    if shards <= 0 then invalid_arg "Engine.create: shards must be positive";
    (match initial with
    | Some (_, epoch0, published0) when epoch0 < 0 || published0 < 0 ->
        invalid_arg "Engine.create: initial epoch/published must be non-negative"
    | _ -> ());
    if batch <= 0 then invalid_arg "Engine.create: batch must be positive";
    if checkpoint_every < 0 then
      invalid_arg "Engine.create: checkpoint_every must be non-negative";
    (match supervisor with
    | Some c ->
        if c.max_restarts < 0 || c.backoff_base < 0.0 || c.poll_interval <= 0.0
        then invalid_arg "Engine.create: malformed supervisor config"
    | None -> ());
    (match trace with
    | Some tr when Obs.Trace.lanes tr < shards + 2 ->
        invalid_arg
          (Printf.sprintf
             "Engine.create: trace needs %d lanes (one per shard, merger, \
              watchdog), got %d"
             (shards + 2) (Obs.Trace.lanes tr))
    | _ -> ());
    let mk_shard _ =
      {
        q = Squeue.create ~impl:queue ~capacity:queue_capacity;
        enqueued = Atomic.make 0;
        dropped = Atomic.make 0;
        consumed = Atomic.make 0;
        flushed_items = Atomic.make 0;
        flushes = Atomic.make 0;
        max_depth = Atomic.make 0;
        alive = Atomic.make true;
        failed = Atomic.make None;
        restarts = Atomic.make 0;
        shed = Atomic.make false;
        last_error = Atomic.make None;
        beats = Atomic.make 0;
        coalesced = Atomic.make 0;
        steals = Atomic.make 0;
        stolen_batches = Atomic.make 0;
        parks = Atomic.make 0;
        pending = Atomic.make None;
      }
    in
    let t =
      {
        shards = Array.init shards mk_shard;
        (* The merger queue stays on the mutex implementation regardless of
           [queue]: it is low-rate (one delta per batch), its consumer
           blocks on empty, and exact blocking semantics matter more there
           than CAS throughput. *)
        mq = Squeue.create ~impl:`Mutex ~capacity:(max 4 (2 * shards));
        batch;
        steal;
        combine;
        on_tick;
        on_merge;
        checkpoint_every;
        on_checkpoint;
        gm = Mutex.create ();
        global = M.create ();
        epoch = 0;
        published = 0;
        lags = [];
        merges = Atomic.make 0;
        decode_failures = Atomic.make 0;
        merger_failed = Atomic.make None;
        lag_timer =
          Option.map
            (fun reg ->
              Obs.Registry.timer reg
                ~help:"Seconds from delta encode to merge into the global"
                "pipeline_merge_lag_seconds")
            metrics;
        trace;
        tracer;
        rec_ = Conc.Recorder.create ~domains:(shards + 2);
        workers = [||];
        merger = None;
        watchdog = None;
        stopping = Atomic.make false;
        dm = Mutex.create ();
        drained = false;
        depth_m = Mutex.create ();
        depths = Array.make shards 0;
        depths_at = 0.0;
      }
    in
    (* Seeding recovered state must happen before any domain spawns: the
       creating thread briefly borrows the merger's recorder slot (domain
       [shards]) to log the carried-over weight as one synchronous update op,
       so [Ivl.Monotone] sees the recovered base instead of flagging the
       first post-restart query as out of thin air. Single-threaded here, so
       the borrow cannot race the real merger. *)
    (match initial with
    | None -> ()
    | Some (g0, epoch0, published0) ->
        t.global <- g0;
        t.epoch <- epoch0;
        t.published <- published0;
        if published0 > 0 then
          Conc.Recorder.record_update t.rec_ ~domain:shards ~obj:0 published0
            (fun () -> ()));
    (match metrics with Some reg -> register_metrics t reg | None -> ());
    t.workers <- Array.init shards (fun i -> Domain.spawn (fun () -> worker t i));
    t.merger <- Some (Domain.spawn (fun () -> merger t));
    (match supervisor with
    | Some cfg -> t.watchdog <- Some (Domain.spawn (fun () -> watchdog t cfg))
    | None -> ());
    t

  (* Relaxed depth read: the high-water mark is a heuristic, and taking the
     queue mutex here once per ingest serialized feeders against the
     consumer (the stats-path race this replaces). *)
  let note_depth s =
    let depth = Squeue.length_relaxed s.q in
    if depth > Atomic.get s.max_depth then Atomic.set s.max_depth depth

  let ingest t x =
    let s = t.shards.(shard_of t x) in
    note_depth s;
    if Squeue.push s.q x then begin
      ignore (Atomic.fetch_and_add s.enqueued 1);
      true
    end
    else begin
      ignore (Atomic.fetch_and_add s.dropped 1);
      false
    end

  (* Mark one key's shard as carrying a sampled trace context: the worker's
     next flush claims the mark and records the queue-residency span. Call
     alongside the ingest of a traced batch's first key (the server does);
     a zero context is a no-op so untraced ingest pays one branch. *)
  let trace_mark t ~key ~ctx =
    if not (Obs.Span.is_zero ctx) then
      Atomic.set
        t.shards.(shard_of t key).pending
        (Some (ctx, Obs.Tracer.now_ns ()))

  let try_ingest t x =
    let s = t.shards.(shard_of t x) in
    note_depth s;
    match Squeue.try_push s.q x with
    | `Ok ->
        ignore (Atomic.fetch_and_add s.enqueued 1);
        true
    | `Full | `Closed ->
        ignore (Atomic.fetch_and_add s.dropped 1);
        false

  let drain t =
    (* The mutex makes drain safe for any number of concurrent callers: one
       performs the shutdown, the rest block until it completes, and every
       caller returns with the pipeline fully drained. The watchdog is
       stopped first so no restart races the queue-closing sweep. *)
    Mutex.lock t.dm;
    if not t.drained then begin
      Atomic.set t.stopping true;
      (match t.watchdog with Some d -> Domain.join d | None -> ());
      t.watchdog <- None;
      Array.iter (fun (s : shard) -> Squeue.close s.q) t.shards;
      Array.iter Domain.join t.workers;
      (* Whatever a dead worker left queued was never summarized: drops. *)
      Array.iter
        (fun (s : shard) ->
          let left = Squeue.drain_remaining s.q in
          if left > 0 then ignore (Atomic.fetch_and_add s.dropped left))
        t.shards;
      Squeue.close t.mq;
      (match t.merger with Some d -> Domain.join d | None -> ());
      t.merger <- None;
      t.drained <- true
    end;
    Mutex.unlock t.dm

  let query t f =
    Mutex.lock t.gm;
    let v = f t.global and e = t.epoch in
    Mutex.unlock t.gm;
    (v, e)

  let snapshot t =
    Mutex.lock t.gm;
    let blob = M.encode t.global and e = t.epoch and p = t.published in
    Mutex.unlock t.gm;
    (blob, e, p)

  let read_total t =
    Conc.Recorder.record_query t.rec_ ~domain:(shard_count t + 1) ~obj:0 0
      (fun () ->
        Mutex.lock t.gm;
        let v = t.published in
        Mutex.unlock t.gm;
        v)

  let epoch t =
    Mutex.lock t.gm;
    let e = t.epoch in
    Mutex.unlock t.gm;
    e

  let stats t =
    Mutex.lock t.gm;
    let epoch = t.epoch and published = t.published in
    let merge_lag = Array.of_list (List.rev t.lags) in
    Mutex.unlock t.gm;
    {
      shards =
        Array.map
          (fun (s : shard) ->
            {
              enqueued = Atomic.get s.enqueued;
              dropped = Atomic.get s.dropped;
              consumed = Atomic.get s.consumed;
              flushed_items = Atomic.get s.flushed_items;
              flushes = Atomic.get s.flushes;
              max_depth = Atomic.get s.max_depth;
              alive = Atomic.get s.alive;
              restarts = Atomic.get s.restarts;
              shed = Atomic.get s.shed;
              last_error = Atomic.get s.last_error;
              beats = Atomic.get s.beats;
              coalesced = Atomic.get s.coalesced;
              steals = Atomic.get s.steals;
              stolen_batches = Atomic.get s.stolen_batches;
              parks = Atomic.get s.parks;
            })
          t.shards;
      merges = Atomic.get t.merges;
      decode_failures = Atomic.get t.decode_failures;
      published;
      epoch;
      merge_lag;
    }

  let dead t =
    Array.to_list t.shards
    |> List.mapi (fun i (s : shard) -> (i, Atomic.get s.alive))
    |> List.filter_map (fun (i, alive) -> if alive then None else Some i)

  let failures t =
    let worker_fails =
      Array.to_list t.shards
      |> List.mapi (fun i (s : shard) ->
             match Atomic.get s.failed with
             | Some e -> Some (Printf.sprintf "shard %d" i, e)
             | None -> None)
      |> List.filter_map Fun.id
    in
    match Atomic.get t.merger_failed with
    | Some e -> ("merger", e) :: worker_fails
    | None -> worker_fails

  let history t = Conc.Recorder.history t.rec_
end
