module Make (M : Mergeable.S) = struct
  type delta = {
    shard : int;
    seq : int; (* per-shard flush sequence number *)
    weight : int; (* stream items summarized in the blob *)
    born : float; (* encode time, for merge-lag percentiles *)
    blob : Bytes.t;
  }

  type shard = {
    q : int Mpsc.t;
    enqueued : int Atomic.t;
    dropped : int Atomic.t;
    consumed : int Atomic.t;
    flushed_items : int Atomic.t;
    flushes : int Atomic.t;
    max_depth : int Atomic.t;
    alive : bool Atomic.t;
    failed : exn option Atomic.t;
  }

  type shard_stats = {
    enqueued : int;
    dropped : int;
    consumed : int;
    flushed_items : int;
    flushes : int;
    max_depth : int;
    alive : bool;
  }

  type stats = {
    shards : shard_stats array;
    merges : int;
    decode_failures : int;
    published : int;
    epoch : int;
    merge_lag : float array; (* seconds, one sample per merge *)
  }

  type t = {
    shards : shard array;
    mq : delta Mpsc.t;
    batch : int;
    gm : Mutex.t; (* guards global/epoch/published/lags *)
    mutable global : M.t;
    mutable epoch : int;
    mutable published : int;
    mutable lags : float list;
    merges : int Atomic.t;
    decode_failures : int Atomic.t;
    merger_failed : exn option Atomic.t;
    rec_ : (int, int, int) Conc.Recorder.t;
    mutable workers : unit Domain.t array;
    mutable merger : unit Domain.t option;
    mutable drained : bool;
  }

  let shard_count t = Array.length t.shards

  (* SplitMix64-style finalizer (truncated to native int) so adjacent
     elements spread across shards. *)
  let shard_of t x =
    let h = x * 0x1E3779B97F4A7C15 in
    let h = (h lxor (h lsr 30)) * 0x3F58476D1CE4E5B9 in
    (h lxor (h lsr 27)) land max_int mod shard_count t

  let worker t i ~on_tick =
    let s = t.shards.(i) in
    let local = ref (M.create ()) in
    let count = ref 0 in
    let seq = ref 0 in
    let flush () =
      if !count > 0 then begin
        let blob = M.encode !local in
        incr seq;
        let d =
          { shard = i; seq = !seq; weight = !count; born = Unix.gettimeofday (); blob }
        in
        if Mpsc.push t.mq d then begin
          ignore (Atomic.fetch_and_add s.flushed_items !count);
          ignore (Atomic.fetch_and_add s.flushes 1)
        end;
        local := M.create ();
        count := 0
      end
    in
    let rec loop () =
      (match on_tick with Some f -> f ~shard:i | None -> ());
      match Mpsc.pop_batch s.q ~max:t.batch with
      | [] -> flush () (* queue closed and drained: final flush, then exit *)
      | items ->
          List.iter (M.update !local) items;
          let n = List.length items in
          count := !count + n;
          ignore (Atomic.fetch_and_add s.consumed n);
          if !count >= t.batch then flush ();
          loop ()
    in
    try loop () with
    | Conc.Chaos.Killed _ ->
        (* Crash-stop: the delta under accumulation is lost (consumed >
           flushed records how much), and closing the queue turns future
           ingests into drops instead of a hang on a dead consumer. *)
        Atomic.set s.alive false;
        Mpsc.close s.q
    | e ->
        Atomic.set s.alive false;
        Atomic.set s.failed (Some e);
        Mpsc.close s.q

  (* The merger is the pipeline's only writer of the global sketch: decode
     the blob, fold it in under the mutex, stamp a new epoch. The recorded
     update op brackets exactly the merge critical section, so the history
     seen by the envelope checker is the pipeline's published state. *)
  let merger t =
    let dom = shard_count t in
    let rec loop () =
      match Mpsc.pop t.mq with
      | None -> ()
      | Some d ->
          (match M.decode d.blob with
          | Error _ -> ignore (Atomic.fetch_and_add t.decode_failures 1)
          | Ok delta ->
              Conc.Recorder.record_update t.rec_ ~domain:dom ~obj:0 d.weight
                (fun () ->
                  Mutex.lock t.gm;
                  t.global <- M.merge t.global delta;
                  t.epoch <- t.epoch + 1;
                  t.published <- t.published + d.weight;
                  t.lags <- (Unix.gettimeofday () -. d.born) :: t.lags;
                  Mutex.unlock t.gm);
              ignore (Atomic.fetch_and_add t.merges 1));
          loop ()
    in
    try loop () with e -> Atomic.set t.merger_failed (Some e)

  let create ?(queue_capacity = 1024) ?(batch = 512) ?on_tick ~shards () =
    if shards <= 0 then invalid_arg "Engine.create: shards must be positive";
    if batch <= 0 then invalid_arg "Engine.create: batch must be positive";
    let mk_shard _ =
      {
        q = Mpsc.create ~capacity:queue_capacity;
        enqueued = Atomic.make 0;
        dropped = Atomic.make 0;
        consumed = Atomic.make 0;
        flushed_items = Atomic.make 0;
        flushes = Atomic.make 0;
        max_depth = Atomic.make 0;
        alive = Atomic.make true;
        failed = Atomic.make None;
      }
    in
    let t =
      {
        shards = Array.init shards mk_shard;
        mq = Mpsc.create ~capacity:(max 4 (2 * shards));
        batch;
        gm = Mutex.create ();
        global = M.create ();
        epoch = 0;
        published = 0;
        lags = [];
        merges = Atomic.make 0;
        decode_failures = Atomic.make 0;
        merger_failed = Atomic.make None;
        rec_ = Conc.Recorder.create ~domains:(shards + 2);
        workers = [||];
        merger = None;
        drained = false;
      }
    in
    t.workers <- Array.init shards (fun i -> Domain.spawn (fun () -> worker t i ~on_tick));
    t.merger <- Some (Domain.spawn (fun () -> merger t));
    t

  let note_depth s =
    let depth = Mpsc.length s.q in
    if depth > Atomic.get s.max_depth then Atomic.set s.max_depth depth

  let ingest t x =
    let s = t.shards.(shard_of t x) in
    note_depth s;
    if Mpsc.push s.q x then begin
      ignore (Atomic.fetch_and_add s.enqueued 1);
      true
    end
    else begin
      ignore (Atomic.fetch_and_add s.dropped 1);
      false
    end

  let try_ingest t x =
    let s = t.shards.(shard_of t x) in
    note_depth s;
    match Mpsc.try_push s.q x with
    | `Ok ->
        ignore (Atomic.fetch_and_add s.enqueued 1);
        true
    | `Full | `Closed ->
        ignore (Atomic.fetch_and_add s.dropped 1);
        false

  let drain t =
    if not t.drained then begin
      t.drained <- true;
      Array.iter (fun (s : shard) -> Mpsc.close s.q) t.shards;
      Array.iter Domain.join t.workers;
      (* Whatever a dead worker left queued was never summarized: drops. *)
      Array.iter
        (fun (s : shard) ->
          let left = Mpsc.drain_remaining s.q in
          if left > 0 then ignore (Atomic.fetch_and_add s.dropped left))
        t.shards;
      Mpsc.close t.mq;
      (match t.merger with Some d -> Domain.join d | None -> ());
      t.merger <- None
    end

  let query t f =
    Mutex.lock t.gm;
    let v = f t.global and e = t.epoch in
    Mutex.unlock t.gm;
    (v, e)

  let read_total t =
    Conc.Recorder.record_query t.rec_ ~domain:(shard_count t + 1) ~obj:0 0
      (fun () ->
        Mutex.lock t.gm;
        let v = t.published in
        Mutex.unlock t.gm;
        v)

  let epoch t =
    Mutex.lock t.gm;
    let e = t.epoch in
    Mutex.unlock t.gm;
    e

  let stats t =
    Mutex.lock t.gm;
    let epoch = t.epoch and published = t.published in
    let merge_lag = Array.of_list (List.rev t.lags) in
    Mutex.unlock t.gm;
    {
      shards =
        Array.map
          (fun (s : shard) ->
            {
              enqueued = Atomic.get s.enqueued;
              dropped = Atomic.get s.dropped;
              consumed = Atomic.get s.consumed;
              flushed_items = Atomic.get s.flushed_items;
              flushes = Atomic.get s.flushes;
              max_depth = Atomic.get s.max_depth;
              alive = Atomic.get s.alive;
            })
          t.shards;
      merges = Atomic.get t.merges;
      decode_failures = Atomic.get t.decode_failures;
      published;
      epoch;
      merge_lag;
    }

  let dead t =
    Array.to_list t.shards
    |> List.mapi (fun i (s : shard) -> (i, Atomic.get s.alive))
    |> List.filter_map (fun (i, alive) -> if alive then None else Some i)

  let failures t =
    let worker_fails =
      Array.to_list t.shards
      |> List.mapi (fun i (s : shard) ->
             match Atomic.get s.failed with
             | Some e -> Some (Printf.sprintf "shard %d" i, e)
             | None -> None)
      |> List.filter_map Fun.id
    in
    match Atomic.get t.merger_failed with
    | Some e -> ("merger", e) :: worker_fails
    | None -> worker_fails

  let history t = Conc.Recorder.history t.rec_
end
