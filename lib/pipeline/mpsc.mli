(** Bounded multi-producer queue with blocking backpressure.

    The pipeline's transport: ingest callers push elements into shard
    queues, shard workers push encoded deltas into the merger queue. A full
    queue blocks producers (backpressure propagates upstream to the feeders)
    rather than growing without bound; {!try_push} gives callers that
    prefer shedding load a non-blocking variant whose [`Full] result they
    count as a drop.

    [close] makes the queue terminal: producers fail fast (no hang on a dead
    consumer — a chaos-killed shard worker closes its queue on the way out),
    while the consumer drains the remaining elements and then sees the empty
    mark. Mutex + condition variables: simple, fair enough, and blocking
    waits release the core, which matters when shards + merger + feeders
    oversubscribe a small machine. *)

type 'a t

val create : capacity:int -> 'a t
(** @raise Invalid_argument if [capacity <= 0]. *)

val push : 'a t -> 'a -> bool
(** Block while full; [false] iff the queue is (or becomes) closed — the
    element was not enqueued. *)

val try_push : 'a t -> 'a -> [ `Ok | `Full | `Closed ]
(** Non-blocking push. *)

val pop : 'a t -> 'a option
(** Block while empty and open; [None] iff closed and drained. Single
    consumer. *)

val pop_batch : 'a t -> max:int -> 'a list
(** Like {!pop} but takes up to [max] elements in one lock acquisition, in
    FIFO order; [[]] iff closed and drained.
    @raise Invalid_argument if [max <= 0]. *)

val try_pop_into : 'a t -> 'a array -> max:int -> int
(** Non-blocking batch pop into a caller-owned buffer: takes up to
    [min max (Array.length buf)] elements, FIFO, into [buf.(0..n-1)] and
    returns the count — [0] means empty-but-open, [-1] means closed and
    drained. Allocation-free at steady state. Runs under the queue mutex,
    so it is safe from any domain — this is also the steal entry point
    when the engine rebalances batches against the mutex queue.
    @raise Invalid_argument if [max <= 0]. *)

val pop_into : 'a t -> 'a array -> max:int -> int
(** Blocking {!try_pop_into}: waits while empty and open; returns
    [n > 0], or [-1] iff closed and drained.
    @raise Invalid_argument if [max <= 0]. *)

val close : 'a t -> unit
(** Idempotent. Wakes every blocked producer and the consumer. *)

val reopen : 'a t -> unit
(** Undo {!close}: producers may push again and a (new) consumer blocks on
    empty instead of seeing the end mark. Elements that were queued at close
    time are still there, in order — the supervisor uses this to hand a
    crashed shard's backlog to its restarted worker instead of shedding it.
    Idempotent; a no-op on an open queue. *)

val drain_remaining : 'a t -> int
(** Discard whatever is still queued and return the count — used by the
    pipeline's drain to account for elements a dead worker never consumed. *)

val length : 'a t -> int
(** Exact (taken under the queue mutex). *)

val length_relaxed : 'a t -> int
(** Unsynchronized, approximate length — no lock, no contention with the
    consumer. For stats and depth heuristics only; immediates cannot
    tear, so the value is always one that was recently written. *)

val is_closed : 'a t -> bool
