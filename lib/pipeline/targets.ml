module Countmin (C : sig
  val seed : int64
  val rows : int
  val width : int
end) : Mergeable.S with type t = Sketches.Countmin.t = struct
  type t = Sketches.Countmin.t

  let name = "countmin"

  (* One coin-flip vector for every delta and the global — decoded deltas
     rebuild it from the serialized coefficients, and merge re-checks
     compatibility. *)
  let family = Hashing.Family.seeded ~seed:C.seed ~rows:C.rows ~width:C.width
  let create () = Sketches.Countmin.create ~family
  let update = Sketches.Countmin.update

  (* CM is linear: one pass over the rows adds the whole count. *)
  let update_many = Sketches.Countmin.update_many
  let merge = Sketches.Countmin.merge
  let encode = Wire.Countmin.encode
  let decode = Wire.Countmin.decode
end

module Hll (C : sig
  val seed : int64
  val p : int
end) : Mergeable.S with type t = Sketches.Hyperloglog.t = struct
  type t = Sketches.Hyperloglog.t

  let name = "hll"
  let create () = Sketches.Hyperloglog.create ~p:C.p ~seed:C.seed ()
  let update = Sketches.Hyperloglog.update

  (* Duplicate-insensitive: seeing an element once or [count] times is the
     same observation. *)
  let update_many t x ~count =
    if count < 0 then invalid_arg "Targets.Hll.update_many: negative count";
    if count > 0 then Sketches.Hyperloglog.update t x

  let merge = Sketches.Hyperloglog.merge
  let encode = Wire.Hll.encode
  let decode = Wire.Hll.decode
end

module Kmv (C : sig
  val seed : int64
  val k : int
end) : Mergeable.S with type t = Sketches.Kmv.t = struct
  type t = Sketches.Kmv.t

  let name = "kmv"
  let create () = Sketches.Kmv.create ~k:C.k ~seed:C.seed ()
  let update = Sketches.Kmv.update

  (* Duplicate-insensitive, like Hll. *)
  let update_many t x ~count =
    if count < 0 then invalid_arg "Targets.Kmv.update_many: negative count";
    if count > 0 then Sketches.Kmv.update t x

  let merge = Sketches.Kmv.merge
  let encode = Wire.Kmv.encode
  let decode = Wire.Kmv.decode
end

module Quantiles (C : sig
  val seed : int64
  val k : int
end) : Mergeable.S with type t = Sketches.Quantiles.t = struct
  type t = Sketches.Quantiles.t

  let name = "quantiles"
  let create () = Sketches.Quantiles.create ~k:C.k ~seed:C.seed ()
  let update = Sketches.Quantiles.update

  (* Rank sketches weight by multiplicity; no weighted insert exists, so
     replay the duplicates. Combining still saves the hashing/dispatch the
     engine would otherwise repeat per occurrence. *)
  let update_many t x ~count =
    if count < 0 then
      invalid_arg "Targets.Quantiles.update_many: negative count";
    for _ = 1 to count do
      Sketches.Quantiles.update t x
    done

  let merge = Sketches.Quantiles.merge
  let encode = Wire.Quantiles.encode
  let decode = Wire.Quantiles.decode
end

module Space_saving (C : sig
  val capacity : int
end) : Mergeable.S with type t = Sketches.Space_saving.t = struct
  type t = Sketches.Space_saving.t

  let name = "space-saving"
  let create () = Sketches.Space_saving.create ~capacity:C.capacity
  let update = Sketches.Space_saving.update

  let update_many t x ~count =
    if count < 0 then
      invalid_arg "Targets.Space_saving.update_many: negative count";
    for _ = 1 to count do
      Sketches.Space_saving.update t x
    done

  let merge a b = Sketches.Space_saving.merge ~capacity:C.capacity a b
  let encode = Wire.Space_saving.encode
  let decode = Wire.Space_saving.decode
end

module Counter : Mergeable.S with type t = Sketches.Batched_counter.t = struct
  type t = Sketches.Batched_counter.t

  let name = "counter"
  let create () = Sketches.Batched_counter.create ()

  (* Every stream element is one event; the element's value is irrelevant. *)
  let update c _ = Sketches.Batched_counter.update c 1

  (* The element's value is irrelevant; its multiplicity is the whole point. *)
  let update_many c _ ~count =
    if count < 0 then invalid_arg "Targets.Counter.update_many: negative count";
    Sketches.Batched_counter.update c count

  let merge a b =
    let c = Sketches.Batched_counter.create () in
    Sketches.Batched_counter.update c (Sketches.Batched_counter.read a);
    Sketches.Batched_counter.update c (Sketches.Batched_counter.read b);
    c

  let encode = Wire.Counter.encode
  let decode = Wire.Counter.decode
end
