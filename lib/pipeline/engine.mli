(** Sharded ingestion pipeline: shard-local sketches, periodic merges into a
    global sketch, snapshot-consistent relaxed reads.

    This is the batched-update architecture the paper models (its
    introduction's motivating big-data systems ingest exactly this way), and
    the published state is a textbook IVL object:

    {v
      ingest ──hash──▶ [shard queue]──▶ worker: local delta ─┐
      ingest ──hash──▶ [shard queue]──▶ worker: local delta ─┤ encoded blobs
      ingest ──hash──▶ [shard queue]──▶ worker: local delta ─┘      │
                                                                    ▼
                                                  [merger queue]──▶ merger:
                                                       global ← merge(delta)
                                                       epoch++, stamp, lag
                                      queries ──▶ snapshot of global @ epoch
    v}

    Each worker owns its shard's delta exclusively (no locks on the update
    path); every [batch] items it encodes the delta as a {!Wire.Codec} blob
    and ships it to the merger, which decodes and folds it into the global
    sketch under a mutex, bumping the epoch. A query therefore sees a
    snapshot: some prefix of merges, never a torn delta — the merged counter
    of published weights is IVL by construction, and the recorded history
    ({!Make.history}: one update op per merge, one query op per
    {!Make.read_total}) lets {!Ivl.Monotone} verify that end-to-end on real
    executions.

    Freshness is the price: items buffered in queues or unshipped deltas are
    invisible to queries until merged, so a smaller [batch] tightens the IVL
    envelope (less lag between v_min and what a query can return) while a
    larger one buys update throughput — the cadence/slack dial
    [docs/PIPELINE.md] discusses. Backpressure is physical: bounded queues
    block feeders when shards fall behind.

    Crash-stop tolerant: a worker dying (e.g. {!Conc.Chaos.Killed} raised by
    an [on_tick] injection hook) closes its queue, so ingest sheds to drops
    instead of hanging, and {!Make.drain} still completes — joining every
    domain and accounting lost items — with the surviving shards' data
    intact.

    Two optional layers turn crash-stop loss into resilience
    [docs/RECOVERY.md]:

    - {e durability hooks} ([on_merge], [checkpoint_every]/[on_checkpoint])
      let [Durable] write-ahead-log every published delta and snapshot the
      global sketch, so a crashed pipeline restarts inside the IVL envelope
      of its pre-crash history;
    - a {e supervisor} (a watchdog domain) detects dead shard workers and
      restarts them with capped exponential backoff and jitter, reopening
      their queues so the backlog survives; a shard that exhausts its
      restart budget degrades to permanent shedding instead of
      crash-looping. *)

type supervisor = {
  max_restarts : int;
      (** per-shard restart budget; exceeding it sheds the shard for good *)
  backoff_base : float;  (** seconds; doubled per consecutive restart *)
  backoff_cap : float;  (** backoff ceiling, seconds *)
  poll_interval : float;  (** watchdog scan period, seconds *)
  seed : int64;  (** jitter randomness (multiplier in [0.5, 1.5)) *)
}

val default_supervisor : supervisor
(** 5 restarts, 2 ms base, 50 ms cap, 0.5 ms polling. *)

module Make (M : Mergeable.S) : sig
  type t

  type shard_stats = {
    enqueued : int;  (** elements accepted into the shard queue *)
    dropped : int;  (** shed: queue closed (dead worker) or [try_ingest] full *)
    consumed : int;  (** elements the worker folded into deltas *)
    flushed_items : int;  (** elements shipped to the merger in blobs *)
    flushes : int;  (** blobs shipped *)
    max_depth : int;  (** high-water queue depth observed at ingest *)
    alive : bool;
    restarts : int;  (** supervisor restarts of this shard's worker *)
    shed : bool;  (** permanently degraded: restart cap exceeded *)
    last_error : string option;  (** most recent death (or shed) reason *)
    beats : int;  (** worker heartbeats, one per batch loop, all incarnations *)
    coalesced : int;
        (** sketch updates saved by the combining buffer (items absorbed
            minus distinct keys, summed over batches); 0 without [combine] *)
    steals : int;
        (** elements this shard's worker stole from other shards' queues;
            counted in the {e thief}'s [consumed]/[flushed_items] while
            [enqueued] stays with the victim — under stealing, conservation
            holds as a sum across shards, not per shard *)
    stolen_batches : int;  (** steal operations performed by this worker *)
    parks : int;  (** idle waits: queue empty and (if stealing) no victim *)
  }

  type stats = {
    shards : shard_stats array;
    merges : int;  (** deltas folded into the global sketch *)
    decode_failures : int;  (** blobs the merger could not decode *)
    published : int;  (** total weight merged — what {!read_total} returns *)
    epoch : int;  (** merge counter; stamps every query snapshot *)
    merge_lag : float array;  (** seconds from delta encode to merge, per merge *)
  }

  val create :
    ?queue:Squeue.impl ->
    ?steal:bool ->
    ?queue_capacity:int ->
    ?batch:int ->
    ?combine:bool ->
    ?on_tick:(shard:int -> unit) ->
    ?on_merge:
      (ctx:Obs.Span.context -> epoch:int -> weight:int -> blob:Bytes.t -> unit) ->
    ?checkpoint_every:int ->
    ?on_checkpoint:(epoch:int -> published:int -> blob:Bytes.t -> unit) ->
    ?supervisor:supervisor ->
    ?metrics:Obs.Registry.t ->
    ?trace:Obs.Trace.t ->
    ?tracer:Obs.Tracer.t ->
    ?initial:M.t * int * int ->
    shards:int ->
    unit ->
    t
  (** Spawn [shards] worker domains plus one merger domain (plus a watchdog
      domain when [supervisor] is given). [queue_capacity] (default 1024)
      bounds each shard queue; [batch] (default 512) is the merge cadence in
      items.

      [queue] selects the shard-queue implementation (default [`Mutex], the
      blocking reference): [`Lockfree] swaps in the {!Ring} — padded CAS
      cursors, allocation-free batch pops, capacity rounded up to a power
      of two internally while backpressure still triggers at exactly
      [queue_capacity]. The merger queue always stays on [`Mutex]
      (low-rate, blocking consumer). [steal] (default: on iff
      [queue = `Lockfree]) enables batch rebalancing: an idle worker claims
      up to half of the deepest other shard's backlog (capped at one
      batch) and folds it into its own delta, so skewed traces don't pin
      one shard while the rest sleep. Stolen items count in the thief's
      [consumed]/[flushed_items]; conservation then holds as
      Σ flushed = Σ enqueued across shards rather than per shard.

      [on_tick] runs in the worker's domain once per batch loop — the
      chaos hook: raising {!Conc.Chaos.Killed} from it crash-stops that
      shard (under a supervisor, the restarted incarnation runs the same
      hook, so a hook that kills unconditionally produces a crash loop that
      ends in shedding — by design).

      [combine] (default [false]) gives each worker a small combining
      buffer: the keys of each popped batch are aggregated in a private
      hash table and folded into the delta with one
      {!Mergeable.S.update_many} per distinct key, so a skewed batch's
      duplicates cost one sketch update instead of many. The delta after
      the batch is identical for weight-linear sketches (CountMin,
      Counter) and summary-equivalent for the rest; flush cadence, blobs,
      and the IVL envelope are unchanged. Savings are reported per shard
      as {!shard_stats.coalesced}.

      [on_merge ~ctx ~epoch ~weight ~blob] runs in the merger's domain after
      each merge, in strict epoch order, outside the query mutex — the WAL
      append point. [ctx] is the merged delta's trace context
      ({!Obs.Span.zero} unless the delta carried a sampled mark — see
      [tracer] below), already re-parented onto the merge span, so a WAL
      wrapper can record its append as the next stage of the waterfall. When [checkpoint_every > 0], every [checkpoint_every]-th epoch
      also calls [on_checkpoint] with a consistent [(epoch, published,
      encoded sketch)] snapshot — the checkpoint write point. Exceptions
      from either hook kill the merger and surface in {!failures}.

      [metrics] exports the pipeline into an {!Obs.Registry.t} — pure
      registration of scrape-time callbacks over counters the engine
      already keeps, so the hot paths pay nothing. Series registered:
      [pipeline_ingested_total], [pipeline_dropped_total],
      [pipeline_consumed_total], [pipeline_flushed_items_total],
      [pipeline_coalesced_total], [pipeline_restarts_total],
      [pipeline_merges_total], [pipeline_decode_failures_total],
      [pipeline_published_total], [pipeline_epoch],
      [pipeline_shed_shards], per-shard series labelled [shard="i"]
      ([pipeline_queue_depth] — a TTL-cached snapshot refreshed at most
      once per ~20 ms so a scrape costs one length sweep instead of
      contending per-gauge with the consumers — [pipeline_queue_max_depth],
      [pipeline_shard_alive], [pipeline_shard_shed], and
      [pipeline_shard_{enqueued,dropped,consumed,flushed_items,flushes,
      coalesced,restarts,steals,stolen_batches,parks}_total]), a
      [pipeline_merge_lag_seconds] summary
      observed by the merger, and [pipeline_envelope_width] — the live IVL
      freshness gap
      (accepted weight minus published weight, reading [published] before
      summing [enqueued] so the reported gap is a sound staleness bound;
      docs/OBSERVABILITY.md).

      [trace] points the engine at an {!Obs.Trace.t} whose lanes map to the
      pipeline's domains: worker [i] writes lane [i] ([flush] and [death]
      events), the merger writes lane [shards] ([merge], [checkpoint]),
      the watchdog lane [shards + 1] ([restart], [shed]). Emits are
      single-writer plain stores into preallocated rings — lossy by design,
      never blocking.

      [tracer] enables distributed-tracing spans for sampled batches: after
      {!trace_mark} tags a shard with a context, that worker's next flush
      records a ["queue"] span (mark → flush: queue residency plus fold,
      both queue implementations) and attaches the context to the delta;
      the merger then records a ["merge"] span (encode → merged, the same
      window as [pipeline_merge_lag_seconds]) and hands the re-parented
      context to [on_merge]. Unsampled traffic pays one atomic-load branch
      per flush.

      [initial (sketch, epoch, published)] seeds the engine with recovered
      state ([Durable.Recovery]) instead of an empty sketch: the global
      starts as [sketch], epoch numbering continues from [epoch], and the
      carried-over [published] weight is logged into the recorded history as
      one synchronous update op before any domain spawns, so the IVL
      envelope checker accounts for the pre-crash base. This is how a soak
      run chains engine incarnations over one WAL ([Workload.Soak]).
      @raise Invalid_argument if [shards <= 0], [batch <= 0],
      [checkpoint_every < 0], the supervisor config is malformed,
      [initial]'s epoch or published weight is negative, or
      [trace] has fewer than [shards + 2] lanes. *)

  val ingest : t -> int -> bool
  (** Route an element to its shard (by hash) and enqueue it, blocking while
      the queue is full — backpressure. [false] means dropped: the shard's
      worker is dead, or the pipeline is drained. Any number of domains may
      ingest concurrently. *)

  val try_ingest : t -> int -> bool
  (** Non-blocking variant: a full queue is an immediate drop (counted). *)

  val trace_mark : t -> key:int -> ctx:Obs.Span.context -> unit
  (** Tag [key]'s shard with a sampled trace context so the worker's next
      flush opens the in-engine leg of the waterfall (see [tracer] in
      {!create}). Call next to the ingest of a traced batch's first key; a
      {!Obs.Span.zero} context is a no-op. One-slot per shard — a second
      mark before the next flush replaces the first (lossy, like spans
      generally). *)

  val drain : t -> unit
  (** Graceful shutdown: stop the watchdog, close shard queues, let workers
      drain and flush their final deltas, join them, then close the merger
      queue and join the merger. Idempotent {e and} safe under concurrent
      callers: one domain performs the shutdown, the rest block until it
      completes, drop accounting happens exactly once. After [drain],
      queries remain valid and ingest returns [false]. *)

  val query : t -> (M.t -> 'a) -> 'a * int
  (** Snapshot-consistent read of the global sketch: [f] runs under the
      merge mutex and the returned epoch identifies the exact prefix of
      merges it saw. Keep [f] cheap — it delays merges, not ingests. *)

  val snapshot : t -> Bytes.t * int * int
  (** [(blob, epoch, published)] — the encoded global sketch with the epoch
      and published weight it corresponds to, captured atomically under the
      merge mutex. The replication handshake: a follower seeded with this
      triple and then fed every [on_merge] delta with epoch > [epoch]
      reconstructs the leader's published state exactly ([Net.Replica]).
      Costs one [M.encode] under the mutex — not for hot read paths. *)

  val read_total : t -> int
  (** Total published weight (stream items merged so far), recorded into the
      pipeline's history as a query op for the envelope checker. At most one
      domain may call this (the recorder gives the reader one buffer). *)

  val epoch : t -> int

  val stats : t -> stats
  (** Callable mid-run (racy per-shard counters, consistent merger block) or
      after {!drain} (exact). *)

  val dead : t -> int list
  (** Shards whose worker is currently dead (mid-restart or shed), ascending. *)

  val failures : t -> (string * exn) list
  (** Unexpected worker/merger exceptions ({!Conc.Chaos.Killed} is expected
      and not listed). Anything here is a pipeline bug. *)

  val history : t -> (int, int, int) Hist.History.t
  (** The recorded merge/read history — feed to
      [Ivl.Monotone.Make (Spec.Counter_spec)]. Call after {!drain} and after
      the reading domain has quiesced. *)
end
