(** Wire codec for the Space-Saving top-k sketch: capacity, stream length
    and the tracked (element, count, error) triples. *)

val kind : int

val encode : Sketches.Space_saving.t -> Bytes.t

val decode : Bytes.t -> (Sketches.Space_saving.t, Codec.error) result
(** Never raises; see {!Codec.decode}. *)
