(** Wire codec for the HyperLogLog sketch: [p], the hash seed, and the
    register file. *)

val kind : int

val encode : Sketches.Hyperloglog.t -> Bytes.t

val decode : Bytes.t -> (Sketches.Hyperloglog.t, Codec.error) result
(** Never raises; see {!Codec.decode}. *)
