(* Payload: k u32 | seed i64 | n i64 | height u32 | per level:
   item count u32 + items i64. Items at level i carry weight 2^i. *)

let kind = Codec.quantiles_kind

let max_height = 62

let encode q =
  Codec.encode ~kind (fun b ->
      Codec.u32 b (Sketches.Quantiles.k q);
      Codec.i64 b (Sketches.Quantiles.seed q);
      Codec.int_ b (Sketches.Quantiles.total q);
      let levels = Sketches.Quantiles.levels q in
      Codec.u32 b (Array.length levels);
      Array.iter
        (fun items ->
          Codec.u32 b (List.length items);
          List.iter (Codec.int_ b) items)
        levels)

let decode blob =
  Codec.decode ~kind
    (fun r ->
      let k = Codec.read_u32 r in
      if k < 2 then Codec.corrupt "k %d below 2" k;
      let seed = Codec.read_i64 r in
      let n = Codec.read_int r in
      if n < 0 then Codec.corrupt "negative stream length %d" n;
      let height = Codec.read_u32 r in
      if height < 1 || height > max_height then
        Codec.corrupt "height %d outside [1, %d]" height max_height;
      let levels =
        Array.init height (fun _ ->
            let count = Codec.read_u32 r in
            List.init count (fun _ -> Codec.read_int r))
      in
      Sketches.Quantiles.of_levels ~k ~seed ~n levels)
    blob
