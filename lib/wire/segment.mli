(** Scanning a flat concatenation of {!Codec} frames — the on-disk shape of
    a write-ahead-log segment file.

    An append-only log written as back-to-back frames needs no index: each
    frame's header declares its own length, so a scan can walk the file and
    re-validate every frame (magic, version, length, FNV-1a checksum) as it
    goes. Crash tolerance falls out of one rule: {e the log is the longest
    valid prefix}. Whatever a crash left after that prefix — a torn
    half-written frame, a checksum-corrupt record, stale garbage — is
    reported as a {!tail} for the caller ([Durable.Wal]) to truncate away.

    This module is pure (bytes in, frames out); file handling lives with the
    durability layer. *)

type tail =
  | Clean  (** The buffer ends exactly on a frame boundary. *)
  | Torn of { valid_prefix : int; dropped_bytes : int; reason : string }
      (** Bytes past [valid_prefix] are not a valid frame; a recovering
          writer should truncate the file to [valid_prefix]. *)

type scan = { frames : Bytes.t list; tail : tail }

val scan : Bytes.t -> scan
(** Split a segment image into its valid frame prefix. Each returned frame
    is a complete, checksum-verified {!Codec} blob (header included), ready
    for [Codec.decode]; kind-level validation is the caller's business. *)

val frame_count : scan -> int
