(** Wire codec for the KLL quantiles sketch: parameters, stream length and
    the compactor hierarchy (level [i] items carry weight 2^i). The decoded
    sketch restarts its compaction RNG from the stored seed — future coin
    flips differ from the source's, which the rank-error analysis does not
    depend on. *)

val kind : int

val encode : Sketches.Quantiles.t -> Bytes.t

val decode : Bytes.t -> (Sketches.Quantiles.t, Codec.error) result
(** Never raises; see {!Codec.decode}. *)
