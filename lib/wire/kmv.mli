(** Wire codec for the KMV distinct-count sketch: [k], the hash seed, and
    the retained minimum hash values. *)

val kind : int

val encode : Sketches.Kmv.t -> Bytes.t

val decode : Bytes.t -> (Sketches.Kmv.t, Codec.error) result
(** Never raises; see {!Codec.decode}. *)
