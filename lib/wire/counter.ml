(* Payload: total i64. *)

let kind = Codec.counter_kind

let encode c =
  Codec.encode ~kind (fun b -> Codec.int_ b (Sketches.Batched_counter.read c))

let decode blob =
  Codec.decode ~kind
    (fun r ->
      let total = Codec.read_int r in
      if total < 0 then Codec.corrupt "negative total %d" total;
      let c = Sketches.Batched_counter.create () in
      Sketches.Batched_counter.update c total;
      c)
    blob
