(** Versioned, checksummed binary framing for sketch blobs.

    Every blob is self-describing: a fixed magic, a format version, a kind
    tag naming the codec, the payload length, and an FNV-1a checksum of the
    payload. {!decode} validates all of these before parsing a single
    payload byte, so truncated, bit-flipped, mixed-version or mixed-kind
    blobs return a precise {!error} — never a raw [Failure],
    [Invalid_argument] or out-of-range [Bytes] read.

    The per-sketch codecs ({!Countmin}, {!Hll}, {!Kmv}, {!Quantiles},
    {!Space_saving}, {!Counter} in this library) are thin payload schemas on
    top of this module; a shard delta travelling through the ingestion
    pipeline ({!Pipeline.Engine}) is exactly one such blob. *)

type error =
  | Truncated of { expected : int; got : int }
      (** Fewer bytes than the header or the declared payload length needs. *)
  | Bad_magic  (** Not an IVLW blob at all. *)
  | Unsupported_version of int
      (** A well-formed blob from a different format version. *)
  | Wrong_kind of { expected : string; got : string }
      (** A valid blob of a different {e known} kind. *)
  | Unknown_kind of int
      (** A well-formed frame whose kind tag this build does not know at
          all — distinct from {!Wrong_kind} so a server can answer
          "unsupported" (a newer peer speaking a future frame kind) instead
          of "you sent a checkpoint where I wanted a countmin". *)
  | Checksum_mismatch  (** Payload bytes do not match the stored checksum. *)
  | Corrupt of string
      (** Header and checksum fine, but the payload violates the schema
          (bad dimensions, values out of range, trailing bytes…). *)

exception Decode_error of error
(** Raised internally by reader primitives; the {!decode} wrapper catches it
    (and any constructor's [Invalid_argument]/[Failure]) and returns
    [Error]. Codec [decode] entry points never raise. *)

val error_to_string : error -> string

val version : int
(** Current wire-format version, stamped into every blob. *)

val header_size : int
(** Bytes of framing before the payload. *)

val peek : Bytes.t -> (string * int, error) result
(** [peek blob] reads only the self-describing header: [(kind name,
    version)]. Works across versions (the header layout is frozen). *)

(** {2 Kind tags} — wire constants; never renumber, only append. *)

val countmin_kind : int
val hll_kind : int
val kmv_kind : int
val quantiles_kind : int
val space_saving_kind : int
val counter_kind : int

val wal_record_kind : int
(** A write-ahead-log record enveloping a sketch delta ({!Segment},
    [Durable.Wal]). *)

val checkpoint_kind : int
(** A full-sketch checkpoint snapshot ([Durable.Checkpoint]). *)

val trace_header_kind : int
(** The leading frame of a workload trace file: format version, seed and
    phase descriptors ([Workload.Trace]). *)

val trace_block_kind : int
(** A block of recorded operations inside a workload trace file
    ([Workload.Trace]). *)

val net_batch_kind : int
(** A served-tier ingest request: a batch of update keys ([Net.Frame]). *)

val net_query_kind : int
(** A served-tier query request ([Net.Frame]). *)

val net_reply_kind : int
(** A served-tier response: ack, result or error ([Net.Frame]). *)

val net_subscribe_kind : int
(** A follower's replication handshake ([Net.Frame]). *)

val net_delta_kind : int
(** A leader-to-follower replication push: snapshot or merged epoch delta
    ([Net.Frame]). *)

val net_hello_kind : int
(** A sender's session handshake: announces the session id its batch
    sequence numbers belong to ([Net.Frame]). *)

val net_session_kind : int
(** A server-side session-journal record: one applied (session, seq,
    count) triple, persisted so the dedup window survives a WAL restart
    ([Net.Dedup]). *)

val net_batch2_kind : int
(** A served-tier ingest request carrying a sampled trace context
    (trace id + parent span id) between session/seq and the keys.
    Batches with a zero context still travel as {!net_batch_kind}, so
    peers that predate tracing interoperate unchanged ([Net.Frame]). *)

val kind_name : int -> string

val known_kind : int -> bool
(** Whether this build understands the kind tag. Frames carrying an unknown
    tag decode to {!Unknown_kind}. *)

val frame_kind : Bytes.t -> (int, error) result
(** [frame_kind blob] validates magic and version and returns the raw kind
    tag — the dispatch step for readers (servers) that accept several frame
    kinds on one stream. Unknown tags come back as [Error (Unknown_kind k)]
    so callers can answer "unsupported" distinctly. *)

val fnv1a : Bytes.t -> off:int -> len:int -> int
(** The framing checksum (FNV-1a-32) over [len] bytes at [off] — exposed so
    stream scanners ({!Segment}) can validate frames in place without
    copying. *)

(** {2 Payload writers} *)

type writer = Buffer.t

val u8 : writer -> int -> unit
val u32 : writer -> int -> unit
val i64 : writer -> int64 -> unit
val int_ : writer -> int -> unit
val float_ : writer -> float -> unit

val bytes_ : writer -> Bytes.t -> unit
(** Length-prefixed byte string — used by envelope payloads (WAL records,
    checkpoints) that nest an already-framed blob. *)

val encode : kind:int -> (writer -> unit) -> Bytes.t
(** [encode ~kind build] runs [build] on a fresh payload buffer and seals it
    with the header and checksum. *)

(** {2 Payload readers} — bounds-checked; raise {!Decode_error} internally. *)

type reader

val read_u8 : reader -> int
val read_u32 : reader -> int
val read_i64 : reader -> int64
val read_int : reader -> int
val read_float : reader -> float
val read_bytes : reader -> Bytes.t

val corrupt : ('a, unit, string, 'b) format4 -> 'a
(** [corrupt fmt …] raises {!Decode_error} with a [Corrupt] payload — for
    schema-level validation inside codec parsers. *)

val decode : kind:int -> (reader -> 'a) -> Bytes.t -> ('a, error) result
(** [decode ~kind parse blob] validates the frame (magic, version, kind,
    length, checksum), runs [parse], and checks the payload was consumed
    exactly. All failure modes — including [Invalid_argument]/[Failure]
    raised by sketch constructors on semantically bad images — come back as
    [Error]. *)
