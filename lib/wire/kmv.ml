(* Payload: k u32 | seed i64 | retained u32 | retained hash values as
   IEEE-754 bit patterns, ascending. *)

let kind = Codec.kmv_kind

let max_k = 1 lsl 24

let encode s =
  Codec.encode ~kind (fun b ->
      Codec.u32 b (Sketches.Kmv.k s);
      Codec.i64 b (Sketches.Kmv.seed s);
      let hs = Sketches.Kmv.hashes s in
      Codec.u32 b (Array.length hs);
      Array.iter (Codec.float_ b) hs)

let decode blob =
  Codec.decode ~kind
    (fun r ->
      let k = Codec.read_u32 r in
      if k < 3 || k > max_k then Codec.corrupt "k %d outside [3, %d]" k max_k;
      let seed = Codec.read_i64 r in
      let count = Codec.read_u32 r in
      if count > k then Codec.corrupt "retained %d exceeds k %d" count k;
      let hs =
        Array.init count (fun _ ->
            let h = Codec.read_float r in
            if not (h > 0.0 && h <= 1.0) then Codec.corrupt "hash value outside (0,1]";
            h)
      in
      Sketches.Kmv.of_hashes ~k ~seed hs)
    blob
