(* Framing: every blob is

     magic "IVLW" (4) | version u8 | kind u8 | payload length u32 (BE)
     | FNV-1a-32 checksum of payload (BE) | payload

   Every header field is validated before a single payload byte is parsed,
   so mixed-version or mixed-kind blobs fail with a precise error instead of
   a garbage sketch, and any single-bit flip is caught: flips in the header
   break the magic/version/kind/length checks, flips in the payload or the
   checksum break the checksum comparison. *)

let magic = "IVLW"
let version = 1
let header_size = 4 + 1 + 1 + 4 + 4

type error =
  | Truncated of { expected : int; got : int }
  | Bad_magic
  | Unsupported_version of int
  | Wrong_kind of { expected : string; got : string }
  | Unknown_kind of int
  | Checksum_mismatch
  | Corrupt of string

exception Decode_error of error

let error_to_string = function
  | Truncated { expected; got } ->
      Printf.sprintf "truncated blob: needed %d bytes, have %d" expected got
  | Bad_magic -> "bad magic: not an IVLW blob"
  | Unsupported_version v -> Printf.sprintf "unsupported wire version %d" v
  | Wrong_kind { expected; got } ->
      Printf.sprintf "wrong kind: expected %s, blob holds %s" expected got
  | Unknown_kind k -> Printf.sprintf "unknown frame kind %d" k
  | Checksum_mismatch -> "payload checksum mismatch"
  | Corrupt msg -> Printf.sprintf "corrupt payload: %s" msg

(* Kind tags are part of the wire format: never renumber, only append. *)
let countmin_kind = 1
let hll_kind = 2
let kmv_kind = 3
let quantiles_kind = 4
let space_saving_kind = 5
let counter_kind = 6
let wal_record_kind = 7
let checkpoint_kind = 8
let trace_header_kind = 9
let trace_block_kind = 10
let net_batch_kind = 11
let net_query_kind = 12
let net_reply_kind = 13
let net_subscribe_kind = 14
let net_delta_kind = 15
let net_hello_kind = 16
let net_session_kind = 17
let net_batch2_kind = 18

let kind_name = function
  | 1 -> "countmin"
  | 2 -> "hyperloglog"
  | 3 -> "kmv"
  | 4 -> "quantiles"
  | 5 -> "space-saving"
  | 6 -> "counter"
  | 7 -> "wal-record"
  | 8 -> "checkpoint"
  | 9 -> "trace-header"
  | 10 -> "trace-block"
  | 11 -> "net-batch"
  | 12 -> "net-query"
  | 13 -> "net-reply"
  | 14 -> "net-subscribe"
  | 15 -> "net-delta"
  | 16 -> "net-hello"
  | 17 -> "net-session"
  | 18 -> "net-batch2"
  | k -> Printf.sprintf "unknown(%d)" k

let known_kind k = k >= 1 && k <= 18

let corrupt fmt = Printf.ksprintf (fun msg -> raise (Decode_error (Corrupt msg))) fmt

let fnv1a bytes ~off ~len =
  let h = ref 0x811c9dc5 in
  for i = off to off + len - 1 do
    h := (!h lxor Char.code (Bytes.get bytes i)) * 0x01000193 land 0xFFFFFFFF
  done;
  !h

(* ------------------------------ writer ------------------------------ *)

type writer = Buffer.t

let u8 b v =
  if v < 0 || v > 0xFF then invalid_arg "Wire.Codec.u8: out of range";
  Buffer.add_uint8 b v

let u32 b v =
  if v < 0 || v > 0xFFFFFFFF then invalid_arg "Wire.Codec.u32: out of range";
  Buffer.add_int32_be b (Int32.of_int v)

let i64 b v = Buffer.add_int64_be b v

let int_ b v = i64 b (Int64.of_int v)

let float_ b v = i64 b (Int64.bits_of_float v)

let bytes_ b v =
  u32 b (Bytes.length v);
  Buffer.add_bytes b v

let seal ~kind payload =
  let plen = Buffer.length payload in
  let total = header_size + plen in
  let out = Bytes.create total in
  Bytes.blit_string magic 0 out 0 4;
  Bytes.set_uint8 out 4 version;
  Bytes.set_uint8 out 5 kind;
  Bytes.set_int32_be out 6 (Int32.of_int plen);
  Buffer.blit payload 0 out header_size plen;
  Bytes.set_int32_be out 10 (Int32.of_int (fnv1a out ~off:header_size ~len:plen));
  out

let encode ~kind build =
  let b = Buffer.create 256 in
  build b;
  seal ~kind b

(* ------------------------------ reader ------------------------------ *)

type reader = { buf : Bytes.t; limit : int; mutable pos : int }

let need r n =
  if r.pos + n > r.limit then
    raise (Decode_error (Truncated { expected = r.pos + n; got = r.limit }))

let read_u8 r =
  need r 1;
  let v = Bytes.get_uint8 r.buf r.pos in
  r.pos <- r.pos + 1;
  v

let read_u32 r =
  need r 4;
  let v = Int32.to_int (Bytes.get_int32_be r.buf r.pos) land 0xFFFFFFFF in
  r.pos <- r.pos + 4;
  v

let read_i64 r =
  need r 8;
  let v = Bytes.get_int64_be r.buf r.pos in
  r.pos <- r.pos + 8;
  v

let read_int r =
  let v = read_i64 r in
  let n = Int64.to_int v in
  if not (Int64.equal (Int64.of_int n) v) then corrupt "integer %Ld exceeds native range" v;
  n

let read_float r = Int64.float_of_bits (read_i64 r)

let read_bytes r =
  let len = read_u32 r in
  need r len;
  let v = Bytes.sub r.buf r.pos len in
  r.pos <- r.pos + len;
  v

let peek bytes =
  let got = Bytes.length bytes in
  if got < header_size then Error (Truncated { expected = header_size; got })
  else if Bytes.sub_string bytes 0 4 <> magic then Error Bad_magic
  else Ok (kind_name (Bytes.get_uint8 bytes 5), Bytes.get_uint8 bytes 4)

let frame_kind bytes =
  let got = Bytes.length bytes in
  if got < header_size then Error (Truncated { expected = header_size; got })
  else if Bytes.sub_string bytes 0 4 <> magic then Error Bad_magic
  else
    let v = Bytes.get_uint8 bytes 4 in
    if v <> version then Error (Unsupported_version v)
    else
      let k = Bytes.get_uint8 bytes 5 in
      if known_kind k then Ok k else Error (Unknown_kind k)

let open_frame ~kind bytes =
  let got = Bytes.length bytes in
  if got < header_size then
    raise (Decode_error (Truncated { expected = header_size; got }));
  if Bytes.sub_string bytes 0 4 <> magic then raise (Decode_error Bad_magic);
  let v = Bytes.get_uint8 bytes 4 in
  if v <> version then raise (Decode_error (Unsupported_version v));
  let k = Bytes.get_uint8 bytes 5 in
  if k <> kind then
    raise
      (Decode_error
         (if known_kind k then
            Wrong_kind { expected = kind_name kind; got = kind_name k }
          else Unknown_kind k));
  let plen = Int32.to_int (Bytes.get_int32_be bytes 6) land 0xFFFFFFFF in
  if header_size + plen > got then
    raise (Decode_error (Truncated { expected = header_size + plen; got }));
  if header_size + plen < got then
    corrupt "%d trailing bytes after payload" (got - header_size - plen);
  let stored = Int32.to_int (Bytes.get_int32_be bytes 10) land 0xFFFFFFFF in
  if fnv1a bytes ~off:header_size ~len:plen <> stored then
    raise (Decode_error Checksum_mismatch);
  { buf = bytes; limit = header_size + plen; pos = header_size }

let decode ~kind parse bytes =
  match
    let r = open_frame ~kind bytes in
    let v = parse r in
    if r.pos <> r.limit then corrupt "%d unread payload bytes" (r.limit - r.pos);
    v
  with
  | v -> Ok v
  | exception Decode_error e -> Error e
  (* A constructor rejecting a structurally valid but semantically bad image
     (e.g. negative counters) must surface as a decode error, never as a raw
     exception leaking to the caller. *)
  | exception Invalid_argument msg -> Error (Corrupt msg)
  | exception Failure msg -> Error (Corrupt msg)
