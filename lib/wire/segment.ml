(* A segment is a flat concatenation of Codec frames. Scanning walks the
   buffer frame by frame, fully validating each frame's structure (magic,
   version, declared length, payload checksum) before yielding it; the first
   byte that fails any of those checks ends the scan. That single rule
   subsumes every crash shape an append-only log can exhibit: a torn tail
   (the process died mid-append), a checksum-corrupt record (bit rot), or
   garbage after a partially reused block — in all cases the valid prefix is
   exactly the frames before the bad byte, and the caller truncates there. *)

type tail =
  | Clean
  | Torn of { valid_prefix : int; dropped_bytes : int; reason : string }

type scan = { frames : Bytes.t list; tail : tail }

let magic = "IVLW"

(* Validate the frame starting at [off]; [Ok next_off] or [Error reason]. *)
let check_frame buf ~off =
  let len = Bytes.length buf in
  if off + Codec.header_size > len then
    Error
      (Printf.sprintf "torn header: %d bytes past offset %d, need %d"
         (len - off) off Codec.header_size)
  else if Bytes.sub_string buf off 4 <> magic then Error "bad magic"
  else
    let v = Bytes.get_uint8 buf (off + 4) in
    if v <> Codec.version then Error (Printf.sprintf "unsupported version %d" v)
    else
      let plen = Int32.to_int (Bytes.get_int32_be buf (off + 6)) land 0xFFFFFFFF in
      let total = Codec.header_size + plen in
      if off + total > len then
        Error
          (Printf.sprintf "torn payload: frame wants %d bytes, %d remain" total
             (len - off))
      else
        let stored =
          Int32.to_int (Bytes.get_int32_be buf (off + 10)) land 0xFFFFFFFF
        in
        if Codec.fnv1a buf ~off:(off + Codec.header_size) ~len:plen <> stored
        then Error "payload checksum mismatch"
        else Ok (off + total)

let scan buf =
  let len = Bytes.length buf in
  let rec go acc off =
    if off = len then { frames = List.rev acc; tail = Clean }
    else
      match check_frame buf ~off with
      | Ok next -> go (Bytes.sub buf off (next - off) :: acc) next
      | Error reason ->
          {
            frames = List.rev acc;
            tail = Torn { valid_prefix = off; dropped_bytes = len - off; reason };
          }
  in
  go [] 0

let frame_count s = List.length s.frames
