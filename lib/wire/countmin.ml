(* Payload: rows u32 | width u32 | rows × (a i64, b i64) coefficients
   | n i64 | rows·width cell counters i64. *)

let kind = Codec.countmin_kind

let max_rows = 256
let max_width = 1 lsl 26

let encode cm =
  let family = Sketches.Countmin.family cm in
  match Hashing.Family.coefficients family with
  | None ->
      invalid_arg
        "Wire.Countmin.encode: family has explicit (non-universal) rows and \
         cannot be serialized"
  | Some coeffs ->
      let d = Sketches.Countmin.rows cm and w = Sketches.Countmin.width cm in
      Codec.encode ~kind (fun b ->
          Codec.u32 b d;
          Codec.u32 b w;
          Array.iter
            (fun (a, bc) ->
              Codec.int_ b a;
              Codec.int_ b bc)
            coeffs;
          Codec.int_ b (Sketches.Countmin.updates cm);
          for i = 0 to d - 1 do
            for j = 0 to w - 1 do
              Codec.int_ b (Sketches.Countmin.cell cm ~row:i ~col:j)
            done
          done)

let decode blob =
  Codec.decode ~kind
    (fun r ->
      let d = Codec.read_u32 r in
      let w = Codec.read_u32 r in
      if d < 1 || d > max_rows then Codec.corrupt "rows %d outside [1, %d]" d max_rows;
      if w < 1 || w > max_width then Codec.corrupt "width %d outside [1, %d]" w max_width;
      let coeffs =
        Array.init d (fun _ ->
            let a = Codec.read_int r in
            let b = Codec.read_int r in
            (a, b))
      in
      let family = Hashing.Family.of_coefficients ~width:w coeffs in
      let n = Codec.read_int r in
      let cells = Array.init d (fun _ -> Array.init w (fun _ -> Codec.read_int r)) in
      Sketches.Countmin.of_cells ~family ~n cells)
    blob
