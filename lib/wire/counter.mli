(** Wire codec for the batched counter (Section 6.2): just the total. *)

val kind : int

val encode : Sketches.Batched_counter.t -> Bytes.t

val decode : Bytes.t -> (Sketches.Batched_counter.t, Codec.error) result
(** Never raises; see {!Codec.decode}. *)
