(** Wire codec for the sequential CountMin sketch.

    Serializes the full state: dimensions, the hash family's coin-flip
    coefficients, the stream length and the counter matrix — decode is the
    exact inverse of encode (same coins, same cells, same answers). *)

val kind : int

val encode : Sketches.Countmin.t -> Bytes.t
(** @raise Invalid_argument if the sketch's family was built with
    {!Hashing.Family.of_mapping} (arbitrary closures are unserializable). *)

val decode : Bytes.t -> (Sketches.Countmin.t, Codec.error) result
(** Never raises; see {!Codec.decode}. *)
