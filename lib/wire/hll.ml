(* Payload: p u8 | seed i64 | 2^p register bytes (each the max
   leading-zero rank seen, ≤ 64). *)

let kind = Codec.hll_kind

let encode h =
  Codec.encode ~kind (fun b ->
      Codec.u8 b (Sketches.Hyperloglog.p h);
      Codec.i64 b (Sketches.Hyperloglog.seed h);
      Array.iter (Codec.u8 b) (Sketches.Hyperloglog.registers h))

let decode blob =
  Codec.decode ~kind
    (fun r ->
      let p = Codec.read_u8 r in
      if p < 4 || p > 16 then Codec.corrupt "p %d outside [4, 16]" p;
      let seed = Codec.read_i64 r in
      let regs =
        Array.init (1 lsl p) (fun _ ->
            let v = Codec.read_u8 r in
            if v > 64 then Codec.corrupt "register value %d exceeds 64" v;
            v)
      in
      Sketches.Hyperloglog.of_registers ~p ~seed regs)
    blob
