(* Payload: capacity u32 | n i64 | entry count u32 | entries as
   (element i64, count i64, error i64), ascending by element. *)

let kind = Codec.space_saving_kind

let max_capacity = 1 lsl 24

let encode s =
  Codec.encode ~kind (fun b ->
      Codec.u32 b (Sketches.Space_saving.capacity s);
      Codec.int_ b (Sketches.Space_saving.total s);
      let ents = Sketches.Space_saving.entries s in
      Codec.u32 b (List.length ents);
      List.iter
        (fun (elt, count, error) ->
          Codec.int_ b elt;
          Codec.int_ b count;
          Codec.int_ b error)
        ents)

let decode blob =
  Codec.decode ~kind
    (fun r ->
      let capacity = Codec.read_u32 r in
      if capacity < 1 || capacity > max_capacity then
        Codec.corrupt "capacity %d outside [1, %d]" capacity max_capacity;
      let n = Codec.read_int r in
      if n < 0 then Codec.corrupt "negative stream length %d" n;
      let count = Codec.read_u32 r in
      if count > capacity then
        Codec.corrupt "entry count %d exceeds capacity %d" count capacity;
      let ents =
        List.init count (fun _ ->
            let elt = Codec.read_int r in
            let c = Codec.read_int r in
            let e = Codec.read_int r in
            (elt, c, e))
      in
      Sketches.Space_saving.of_entries ~capacity ~n ents)
    blob
