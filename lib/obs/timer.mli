(** A striped quantile timer: KLL sketches behind per-stripe mutexes.

    Where {!Histogram} trades quantile resolution for a wait-free observe
    path, a [Timer] records every observation into a {!Sketches.Quantiles}
    sketch (±εn rank error, ~1% at the default k) — the right tool for
    merge-lag and fsync-latency distributions where the interesting signal
    is a p99 shift well below a factor of 2.

    The price is a mutex and sketch allocation per observe. Striping keeps
    the mutex uncontended (a domain locks the stripe picked by its id), and
    a scrape locks each stripe only long enough to {!Sketches.Quantiles.copy}
    it, merging the copies outside the locks — a scrape never blocks an
    observer for more than one O(retained) copy. *)

type t

val create : ?stripes:int -> ?k:int -> seed:int64 -> unit -> t
(** [stripes] defaults near the domain count; [k] (default 200) is the KLL
    accuracy parameter. @raise Invalid_argument if either is non-positive. *)

val observe : t -> float -> unit
(** Record one observation (e.g. seconds), from any domain. Takes the
    calling domain's stripe mutex; allocates (sketch internals). *)

val time : t -> (unit -> 'a) -> 'a
(** Run the thunk and observe its wall-clock duration in seconds. *)

val count : t -> int

val sum : t -> float
(** Sum of observed values (same nanounit accumulation as
    {!Histogram.sum}). *)

val quantile : t -> float -> float
(** Merged-sketch [phi]-quantile; 0 on an empty timer.
    @raise Invalid_argument outside [0,1]. *)

val quantiles : t -> float list -> (float * float) list
(** One merge, several probes — what a scrape uses. *)
