(** A minimal select-polled HTTP/1.1 endpoint for live telemetry.

    Same shape as [Net.Chaos_proxy]'s accept loop: one domain polls the
    listening socket with a 50ms [select] so [stop] is always noticed,
    and each accepted connection is served to completion inline —
    request parse, one handler call, one response, close. That is the
    right trade for a scrape plane: requests are tiny, responses are a
    metrics page, and serving inline means no per-connection domains to
    reap. Not a general web server — no keep-alive, no chunking, no TLS.

    The handler is pure request → response; {!telemetry_handler} is the
    standard one serving [/metrics], [/metrics.json], [/healthz] and
    [/trace?n=K] over a registry, a tracer and an SLO monitor. *)

type response = {
  status : int;  (** e.g. 200, 404, 503 *)
  content_type : string;
  body : string;
}

val response : ?status:int -> ?content_type:string -> string -> response
(** Defaults: status 200, [text/plain; version=0.0.4] (the Prometheus
    exposition content type). *)

type handler = path:string -> query:(string * string) list -> response option
(** [None] means 404. [query] is the parsed [?k=v&k2=v2] part. *)

type t

val create : ?host:string -> ?port:int -> handler:handler -> unit -> t
(** Bind, listen and start the accept domain. [host] defaults to
    127.0.0.1; [port] 0 (the default) lets the kernel pick — read it back
    with {!port}. @raise Unix.Unix_error if the bind fails (port taken). *)

val port : t -> int

val stop : t -> unit
(** Stop accepting, close the socket, join the domain. Idempotent. *)

val requests : t -> int
(** Requests served (any status) since {!create}. *)

val telemetry_handler :
  registry:Registry.t ->
  ?tracer:Tracer.t ->
  ?slo:Slo.t ->
  ?health:(unit -> (string * string) list) ->
  unit ->
  handler
(** The standard telemetry routes:
    - [/metrics] — Prometheus text via {!Expose.to_prometheus};
    - [/metrics.json] — {!Expose.to_json};
    - [/healthz] — JSON status: SLO verdict (the response is HTTP 503
      when breached, so load balancers and [curl -f] see it) plus the
      [health] callback's key/value pairs (engine + WAL + supervisor
      status strings);
    - [/trace?n=K] — the tracer's [K] (default 64) most recent spans as
      a JSON array, oldest first.

    Evaluating [/healthz] calls {!Slo.eval}, so scraping it at any
    cadence drives the burn-rate machine without a dedicated poller. *)
