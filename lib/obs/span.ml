type context = { trace_id : int64; parent : int64 }

let zero = { trace_id = 0L; parent = 0L }
let is_zero ctx = Int64.equal ctx.trace_id 0L
let with_parent ctx span_id = { ctx with parent = span_id }

type record = {
  trace_id : int64;
  span_id : int64;
  parent : int64;
  stage : string;
  start_ns : int;
  dur_ns : int;
  stamp : int;
}

(* Ids print as hex (Jaeger-style); stage names are trusted constants but
   escaped anyway so a future dynamic stage cannot corrupt the stream. *)
let record_to_json r =
  let b = Buffer.create 128 in
  Buffer.add_string b "{\"trace_id\":\"";
  Buffer.add_string b (Printf.sprintf "%016Lx" r.trace_id);
  Buffer.add_string b "\",\"span_id\":\"";
  Buffer.add_string b (Printf.sprintf "%016Lx" r.span_id);
  Buffer.add_string b "\",\"parent\":\"";
  Buffer.add_string b (Printf.sprintf "%016Lx" r.parent);
  Buffer.add_string b "\",\"stage\":\"";
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    r.stage;
  Buffer.add_string b "\",\"start_ns\":";
  Buffer.add_string b (string_of_int r.start_ns);
  Buffer.add_string b ",\"dur_ns\":";
  Buffer.add_string b (string_of_int r.dur_ns);
  Buffer.add_string b ",\"stamp\":";
  Buffer.add_string b (string_of_int r.stamp);
  Buffer.add_char b '}';
  Buffer.contents b
