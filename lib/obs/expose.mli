(** Pure exposition formats over a {!Snapshot.t}. No sockets, no IO — these
    return strings; callers decide where bytes go (a file, stdout, a CI
    artifact). *)

val to_prometheus : Snapshot.t -> string
(** Prometheus text format, version 0.0.4: [# HELP] / [# TYPE] headers,
    histogram [_bucket{le="..."}] cumulative series plus [_sum]/[_count],
    timers as summaries with [{quantile="..."}] series. *)

val to_json : Snapshot.t -> string
(** Stable JSON:
    [{ "at": <float>, "metrics": [ { "name", "type", "labels",
       ("value" | "buckets" | "quantiles"), "count", "sum" } ] }].
    Metrics are in snapshot order (sorted by name then labels). *)

val to_table : Snapshot.t -> string
(** Aligned human-readable table — the single formatter the CLI's stats
    output is a view over. *)
