type t = {
  bounds : float array; (* finite upper bounds, strictly increasing *)
  buckets : int Atomic.t array; (* one per bound + the +inf overflow *)
  sum_nano : Conc.Striped_total.t; (* observed values in 1e-9 units *)
}

let default_buckets = Array.init 27 (fun i -> 1e-6 *. (2.0 ** float_of_int i))

let create ?(buckets = default_buckets) () =
  if Array.length buckets = 0 then
    invalid_arg "Histogram.create: no buckets";
  Array.iteri
    (fun i b ->
      if (not (Float.is_finite b)) || (i > 0 && buckets.(i - 1) >= b) then
        invalid_arg "Histogram.create: bounds must be finite, strictly increasing")
    buckets;
  {
    bounds = Array.copy buckets;
    buckets = Conc.Padding.atomic_array (Array.length buckets + 1) 0;
    sum_nano = Conc.Striped_total.create ~slots:(Domain.recommended_domain_count () + 4);
  }

let observe t v =
  let n = Array.length t.bounds in
  (* Linear scan: the bound array is a handful of cache lines and the scan
     is branch-predictable for any stable latency distribution — cheaper in
     practice than a branchy binary search at these sizes, and allocation
     free either way. *)
  let i = ref 0 in
  while !i < n && v > Array.unsafe_get t.bounds !i do
    incr i
  done;
  ignore (Atomic.fetch_and_add t.buckets.(!i) 1);
  Conc.Striped_total.add t.sum_nano (int_of_float (v *. 1e9))

let count t = Array.fold_left (fun acc b -> acc + Atomic.get b) 0 t.buckets

let sum t = float_of_int (Conc.Striped_total.read t.sum_nano) *. 1e-9

let cumulative t =
  let n = Array.length t.bounds in
  let acc = ref 0 in
  Array.init (n + 1) (fun i ->
      acc := !acc + Atomic.get t.buckets.(i);
      ((if i < n then t.bounds.(i) else infinity), !acc))

let quantile t phi =
  if phi < 0.0 || phi > 1.0 then invalid_arg "Histogram.quantile: phi outside [0,1]";
  let cum = cumulative t in
  let total = snd cum.(Array.length cum - 1) in
  if total = 0 then 0.0
  else begin
    let target = phi *. float_of_int total in
    let rec find i = if float_of_int (snd cum.(i)) >= target then i else find (i + 1) in
    let i = find 0 in
    let hi = fst cum.(i) in
    let n_bounds = Array.length t.bounds in
    if i >= n_bounds then (* +inf bucket: clamp to the largest finite bound *)
      t.bounds.(n_bounds - 1)
    else begin
      let lo = if i = 0 then 0.0 else fst cum.(i - 1) in
      let below = if i = 0 then 0 else snd cum.(i - 1) in
      let in_bucket = snd cum.(i) - below in
      if in_bucket = 0 then hi
      else
        lo
        +. (hi -. lo)
           *. ((target -. float_of_int below) /. float_of_int in_bucket)
    end
  end
