(** Continuous envelope-SLO monitoring: is the system's quantitative
    correctness bound actually holding *right now*?

    IVL makes correctness quantitative — a read is "good" relative to the
    width of its envelope (Rinberg & Keidar, PODC 2020, Theorem 6). This
    module turns that from a post-mortem test assertion into a live
    service-level objective: three dimensions (accepted-but-unpublished
    envelope width, replica staleness, merge lag) are each read through a
    callback, divided by a budget, and folded through a burn-rate state
    machine with hysteresis:

    - [Ok] → [Warning] when any ratio crosses [warn_ratio];
    - [Warning] → [Breach] only after [breach_after] {e consecutive}
      over-budget evaluations (a single chaos-induced spike is not an
      incident);
    - downgrades require [clear_after] consecutive in-budget evaluations
      (no flapping at the boundary).

    Evaluation is pull-based ({!eval} from a scrape, the HTTP [/healthz]
    handler or a soak's sampler loop) or push-based (a [poll] domain). *)

type budget = {
  envelope_width : float;  (** max acceptable [pipeline_envelope_width] *)
  staleness : float;  (** max acceptable replica lag, in published weight *)
  merge_lag : float;  (** max acceptable delta age at merge, seconds *)
}

val theorem6_budget :
  ?slack:float -> shards:int -> batch:int -> queue_capacity:int -> unit -> budget
(** The envelope bound the engine's own structure implies: at any instant
    at most [shards * (batch + queue_capacity)] accepted updates can sit
    unpublished (each worker holds one open batch and a full queue), scaled
    by [slack] (default 2.0) to absorb merger-queue residency. Staleness
    gets the same bound (a healthy follower trails by at most what the
    leader has in flight) and merge lag defaults to 1s per 64 batch items
    of fold work, floored at 1s. *)

type state = Ok | Warning | Breach

val state_to_string : state -> string
val state_code : state -> int  (** 0 / 1 / 2 — the [slo_status] gauge *)

type verdict = {
  state : state;
  worst_dim : string;  (** dimension with the highest burn ratio *)
  worst_ratio : float;  (** its value / budget *)
  breaches : int;  (** times the machine entered [Breach], ever *)
}

type t

val create :
  ?budget:budget ->
  ?warn_ratio:float ->
  ?breach_after:int ->
  ?clear_after:int ->
  ?metrics:Registry.t ->
  envelope:(unit -> float) ->
  staleness:(unit -> float) ->
  merge_lag:(unit -> float) ->
  unit ->
  t
(** [warn_ratio] (default 0.8) is the fraction of budget that arms
    [Warning]; ratios >= 1.0 are over budget. [breach_after] (default 5)
    and [clear_after] (default 3) are the hysteresis window lengths.
    [metrics] registers [slo_status], [slo_burn_ratio],
    [slo_ratio{dim="..."}] gauges and [slo_breaches_total]. A negative
    callback value means "dimension unknown" (e.g. no replica attached)
    and is scored as in-budget. *)

val budget_of : t -> budget

val eval : t -> verdict
(** Read all three dimensions, advance the state machine, return the
    current verdict. Thread-safe; call from any domain at any cadence. *)

val current : t -> verdict
(** Last verdict without advancing the machine ([Ok]/ratio 0 before the
    first {!eval}). *)

val breaches : t -> int
(** Times the machine has ever entered [Breach] — the soak's
    zero-tolerance drain check reads this after a final {!eval}. *)
