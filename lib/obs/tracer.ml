let now_ns () = int_of_float (Unix.gettimeofday () *. 1e9)

type t = {
  sample_every : int;
  m : Mutex.t;  (* guards dice, ring and the stage-timer table *)
  dice : Rng.Splitmix.t;
  ring : Span.record option array;  (* keep most-recent spans, ring-indexed *)
  mutable written : int;
  stamp : int Atomic.t;  (* monotone record tick, shared across domains *)
  trace : Trace.t option;
  lane : int;
  metrics : Registry.t option;
  stage_timers : (string, Timer.t) Hashtbl.t;
  sampled_n : int Atomic.t;
  spans_n : int Atomic.t;
}

let create ?(sample_every = 64) ?(seed = 0x7ace5L) ?(keep = 512) ?trace
    ?(lane = 0) ?metrics () =
  if sample_every < 0 then invalid_arg "Obs.Tracer.create: sample_every < 0";
  if keep <= 0 then invalid_arg "Obs.Tracer.create: keep <= 0";
  let t =
    {
      sample_every;
      m = Mutex.create ();
      dice = Rng.Splitmix.create seed;
      ring = Array.make keep None;
      written = 0;
      stamp = Atomic.make 0;
      trace;
      lane;
      metrics;
      stage_timers = Hashtbl.create 8;
      sampled_n = Atomic.make 0;
      spans_n = Atomic.make 0;
    }
  in
  (match metrics with
  | Some reg ->
      Registry.counter_fn reg "trace_sampled_total"
        ~help:"Trace contexts handed out by the sampler" (fun () ->
          Atomic.get t.sampled_n);
      Registry.counter_fn reg "trace_spans_total"
        ~help:"Stage spans recorded" (fun () -> Atomic.get t.spans_n);
      Registry.counter_fn reg "trace_spans_dropped_total"
        ~help:"Spans evicted from the recent-span window" (fun () ->
          max 0 (t.written - keep))
  | None -> ());
  t

let sample_every t = t.sample_every
let sampled t = Atomic.get t.sampled_n
let spans t = Atomic.get t.spans_n

(* Ids must be nonzero (zero means "untraced") and unique enough to join
   spans across tiers; 64 random bits from the seeded stream are both. *)
let rec nonzero_id dice =
  let id = Rng.Splitmix.next_int64 dice in
  if Int64.equal id 0L then nonzero_id dice else id

let sample t =
  if t.sample_every = 0 then None
  else begin
    Mutex.lock t.m;
    let hit = Rng.Splitmix.next_int t.dice t.sample_every = 0 in
    let ctx =
      if hit then begin
        let id = nonzero_id t.dice in
        Atomic.incr t.sampled_n;
        Some { Span.trace_id = id; parent = 0L }
      end
      else None
    in
    Mutex.unlock t.m;
    ctx
  end

let stage_timer t reg stage =
  match Hashtbl.find_opt t.stage_timers stage with
  | Some timer -> timer
  | None ->
      let timer =
        Registry.timer reg "trace_stage_seconds"
          ~help:"Per-stage latency of sampled requests"
          ~labels:[ ("stage", stage) ]
      in
      Hashtbl.add t.stage_timers stage timer;
      timer

let record t ~ctx ~stage ~start_ns ~end_ns =
  if Span.is_zero ctx then 0L
  else begin
    Mutex.lock t.m;
    let span_id = nonzero_id t.dice in
    let stamp = Atomic.fetch_and_add t.stamp 1 in
    let dur_ns = max 0 (end_ns - start_ns) in
    let r =
      {
        Span.trace_id = ctx.Span.trace_id;
        span_id;
        parent = ctx.Span.parent;
        stage;
        start_ns;
        dur_ns;
        stamp;
      }
    in
    t.ring.(t.written mod Array.length t.ring) <- Some r;
    t.written <- t.written + 1;
    let timer =
      match t.metrics with
      | Some reg -> Some (stage_timer t reg stage)
      | None -> None
    in
    Mutex.unlock t.m;
    Atomic.incr t.spans_n;
    (match t.trace with
    | Some tr ->
        (* a/b carry the low trace-id bits and the latency so a ring dump
           still correlates with the waterfall after the span ring wraps *)
        Trace.emit tr ~lane:t.lane ~tag:stage
          ~a:(Int64.to_int (Int64.logand ctx.Span.trace_id 0x3FFFFFFFFFFFFFFFL))
          ~b:dur_ns
    | None -> ());
    (match timer with
    | Some timer -> Timer.observe timer (float_of_int dur_ns *. 1e-9)
    | None -> ());
    span_id
  end

let recent t n =
  Mutex.lock t.m;
  let len = Array.length t.ring in
  let have = min t.written len in
  let take = min (max 0 n) have in
  let out = ref [] in
  (* newest-first walk back from the write cursor, then reverse *)
  for i = 0 to take - 1 do
    match t.ring.((t.written - 1 - i + (2 * len)) mod len) with
    | Some r -> out := r :: !out
    | None -> ()
  done;
  Mutex.unlock t.m;
  !out
