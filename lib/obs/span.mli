(** Trace spans: the unit of the cross-tier waterfall.

    A {!context} is what travels — on the wire inside a batch frame
    ([Net.Frame]), and in-process attached to a shard delta
    ([Pipeline.Engine]). It is deliberately tiny (two int64s) so an
    unsampled request pays nothing beyond comparing against {!zero}: the
    all-zero context is the opt-out that keeps the PR 8 wire schema
    byte-identical for untraced batches.

    A {!record} is what a {!Tracer} keeps locally once a stage completes:
    the context plus this stage's own span id, name and timing. Records
    from different tiers sharing a [trace_id] line up into one waterfall
    (client enqueue → sender flush → server decode → ingest → queue →
    merge → WAL append → replica apply). *)

type context = {
  trace_id : int64;  (** whole-request identity; 0 means "not sampled" *)
  parent : int64;  (** span id of the stage that handed the request on *)
}

val zero : context
(** The untraced context: both fields 0. Encodes as a legacy batch frame. *)

val is_zero : context -> bool
(** Sampled or not — the single branch every stage takes. *)

val with_parent : context -> int64 -> context
(** [with_parent ctx span_id] is the context a stage hands downstream after
    recording its own span as [span_id]. *)

type record = {
  trace_id : int64;
  span_id : int64;
  parent : int64;
  stage : string;  (** preallocated stage-name constant, e.g. ["decode"] *)
  start_ns : int;  (** wall-clock nanoseconds at stage entry *)
  dur_ns : int;  (** stage latency in nanoseconds (>= 0) *)
  stamp : int;  (** tracer-local monotone tick: smaller = recorded earlier *)
}

val record_to_json : record -> string
(** One span as a JSON object — the element type of [/trace?n=K]. *)
