(* Prometheus text-0.0.4 escaping differs from JSON: label values escape
   exactly backslash, double-quote and newline — every other byte travels
   raw (a "\t" or "	" sequence would be read back literally). HELP
   text escapes only backslash and newline (quotes are legal there). *)
let buf_add_prom_escaped ?(quote = true) b s =
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' when quote -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s

let buf_add_escaped b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let float_repr v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.1f" v
  else Printf.sprintf "%.9g" v

(* ---------------- Prometheus text format ---------------- *)

let prom_float v =
  if v = Float.infinity then "+Inf"
  else if v = Float.neg_infinity then "-Inf"
  else if Float.is_nan v then "NaN"
  else float_repr v

let prom_labels b labels =
  match labels with
  | [] -> ()
  | labels ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_string b k;
          Buffer.add_string b "=\"";
          buf_add_prom_escaped b v;
          Buffer.add_char b '"')
        labels;
      Buffer.add_char b '}'

(* le= / quantile= joins the sample's own labels *)
let prom_labels_plus b labels extra_k extra_v =
  Buffer.add_char b '{';
  List.iter
    (fun (k, v) ->
      Buffer.add_string b k;
      Buffer.add_string b "=\"";
      buf_add_prom_escaped b v;
      Buffer.add_string b "\",")
    labels;
  Buffer.add_string b extra_k;
  Buffer.add_string b "=\"";
  Buffer.add_string b extra_v;
  Buffer.add_string b "\"}"

let to_prometheus (snap : Snapshot.t) =
  let b = Buffer.create 4096 in
  let seen_header = Hashtbl.create 16 in
  let header name help kind =
    if not (Hashtbl.mem seen_header name) then begin
      Hashtbl.add seen_header name ();
      if help <> "" then begin
        Buffer.add_string b "# HELP ";
        Buffer.add_string b name;
        Buffer.add_char b ' ';
        buf_add_prom_escaped ~quote:false b help;
        Buffer.add_char b '\n'
      end;
      Buffer.add_string b "# TYPE ";
      Buffer.add_string b name;
      Buffer.add_char b ' ';
      Buffer.add_string b kind;
      Buffer.add_char b '\n'
    end
  in
  List.iter
    (fun (s : Snapshot.sample) ->
      match s.value with
      | Snapshot.Counter v ->
          header s.name s.help "counter";
          Buffer.add_string b s.name;
          prom_labels b s.labels;
          Buffer.add_char b ' ';
          Buffer.add_string b (string_of_int v);
          Buffer.add_char b '\n'
      | Snapshot.Gauge v ->
          header s.name s.help "gauge";
          Buffer.add_string b s.name;
          prom_labels b s.labels;
          Buffer.add_char b ' ';
          Buffer.add_string b (prom_float v);
          Buffer.add_char b '\n'
      | Snapshot.Histogram h ->
          header s.name s.help "histogram";
          Array.iter
            (fun (bound, cum) ->
              Buffer.add_string b s.name;
              Buffer.add_string b "_bucket";
              prom_labels_plus b s.labels "le" (prom_float bound);
              Buffer.add_char b ' ';
              Buffer.add_string b (string_of_int cum);
              Buffer.add_char b '\n')
            h.Snapshot.cumulative;
          Buffer.add_string b s.name;
          Buffer.add_string b "_sum";
          prom_labels b s.labels;
          Buffer.add_char b ' ';
          Buffer.add_string b (prom_float h.Snapshot.h_sum);
          Buffer.add_char b '\n';
          Buffer.add_string b s.name;
          Buffer.add_string b "_count";
          prom_labels b s.labels;
          Buffer.add_char b ' ';
          Buffer.add_string b (string_of_int h.Snapshot.h_count);
          Buffer.add_char b '\n'
      | Snapshot.Summary sv ->
          header s.name s.help "summary";
          List.iter
            (fun (phi, v) ->
              Buffer.add_string b s.name;
              prom_labels_plus b s.labels "quantile" (prom_float phi);
              Buffer.add_char b ' ';
              Buffer.add_string b (prom_float v);
              Buffer.add_char b '\n')
            sv.Snapshot.q;
          Buffer.add_string b s.name;
          Buffer.add_string b "_sum";
          prom_labels b s.labels;
          Buffer.add_char b ' ';
          Buffer.add_string b (prom_float sv.Snapshot.s_sum);
          Buffer.add_char b '\n';
          Buffer.add_string b s.name;
          Buffer.add_string b "_count";
          prom_labels b s.labels;
          Buffer.add_char b ' ';
          Buffer.add_string b (string_of_int sv.Snapshot.s_count);
          Buffer.add_char b '\n')
    snap.Snapshot.samples;
  Buffer.contents b

(* ---------------- JSON exposition ---------------- *)

let json_float v =
  if Float.is_nan v || Float.abs v = Float.infinity then "null"
  else float_repr v

let json_string b s =
  Buffer.add_char b '"';
  buf_add_escaped b s;
  Buffer.add_char b '"'

let json_labels b labels =
  Buffer.add_char b '{';
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char b ',';
      json_string b k;
      Buffer.add_char b ':';
      json_string b v)
    labels;
  Buffer.add_char b '}'

let to_json (snap : Snapshot.t) =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"at\":";
  Buffer.add_string b (Printf.sprintf "%.6f" snap.Snapshot.at);
  Buffer.add_string b ",\"metrics\":[";
  List.iteri
    (fun i (s : Snapshot.sample) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b "{\"name\":";
      json_string b s.name;
      Buffer.add_string b ",\"type\":";
      (match s.value with
      | Snapshot.Counter _ -> Buffer.add_string b "\"counter\""
      | Snapshot.Gauge _ -> Buffer.add_string b "\"gauge\""
      | Snapshot.Histogram _ -> Buffer.add_string b "\"histogram\""
      | Snapshot.Summary _ -> Buffer.add_string b "\"summary\"");
      Buffer.add_string b ",\"labels\":";
      json_labels b s.labels;
      (match s.value with
      | Snapshot.Counter v ->
          Buffer.add_string b ",\"value\":";
          Buffer.add_string b (string_of_int v)
      | Snapshot.Gauge v ->
          Buffer.add_string b ",\"value\":";
          Buffer.add_string b (json_float v)
      | Snapshot.Histogram h ->
          Buffer.add_string b ",\"buckets\":[";
          Array.iteri
            (fun j (bound, cum) ->
              if j > 0 then Buffer.add_char b ',';
              Buffer.add_string b "{\"le\":";
              Buffer.add_string b (json_float bound);
              Buffer.add_string b ",\"count\":";
              Buffer.add_string b (string_of_int cum);
              Buffer.add_char b '}')
            h.Snapshot.cumulative;
          Buffer.add_string b "],\"count\":";
          Buffer.add_string b (string_of_int h.Snapshot.h_count);
          Buffer.add_string b ",\"sum\":";
          Buffer.add_string b (json_float h.Snapshot.h_sum)
      | Snapshot.Summary sv ->
          Buffer.add_string b ",\"quantiles\":[";
          List.iteri
            (fun j (phi, v) ->
              if j > 0 then Buffer.add_char b ',';
              Buffer.add_string b "{\"phi\":";
              Buffer.add_string b (json_float phi);
              Buffer.add_string b ",\"value\":";
              Buffer.add_string b (json_float v);
              Buffer.add_char b '}')
            sv.Snapshot.q;
          Buffer.add_string b "],\"count\":";
          Buffer.add_string b (string_of_int sv.Snapshot.s_count);
          Buffer.add_string b ",\"sum\":";
          Buffer.add_string b (json_float sv.Snapshot.s_sum));
      Buffer.add_char b '}')
    snap.Snapshot.samples;
  Buffer.add_string b "]}";
  Buffer.contents b

(* ---------------- Human table ---------------- *)

let short_labels labels =
  match labels with
  | [] -> ""
  | labels ->
      "{" ^ String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) labels) ^ "}"

let human_value (v : Snapshot.value) =
  match v with
  | Snapshot.Counter c -> string_of_int c
  | Snapshot.Gauge g -> float_repr g
  | Snapshot.Histogram h ->
      Printf.sprintf "count=%d sum=%s" h.Snapshot.h_count
        (float_repr h.Snapshot.h_sum)
  | Snapshot.Summary sv ->
      String.concat " "
        (List.map
           (fun (phi, v) -> Printf.sprintf "p%g=%s" (phi *. 100.0) (prom_float v))
           sv.Snapshot.q)
      ^ Printf.sprintf " (n=%d)" sv.Snapshot.s_count

let to_table (snap : Snapshot.t) =
  let rows =
    List.map
      (fun (s : Snapshot.sample) ->
        (s.name ^ short_labels s.labels, human_value s.value))
      snap.Snapshot.samples
  in
  let w =
    List.fold_left (fun acc (k, _) -> max acc (String.length k)) 0 rows
  in
  let b = Buffer.create 1024 in
  List.iter
    (fun (k, v) ->
      Buffer.add_string b (Printf.sprintf "  %-*s  %s\n" w k v))
    rows;
  Buffer.contents b
