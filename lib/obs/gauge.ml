(* A float array is a flat no-scan block, so Padding.copy cannot pad it —
   instead the array pads itself: 24 unboxed slots span three-plus cache
   lines, and the hot word in the middle (slot 8) sits at least 64 bytes
   from either edge, whatever the allocator's line phase. *)

type t = float array

let hot = 8

let create ?(initial = 0.0) () =
  let t = Array.make 24 0.0 in
  t.(hot) <- initial;
  t

let set (t : t) v = Array.unsafe_set t hot v
let read (t : t) = Array.unsafe_get t hot
