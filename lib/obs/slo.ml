type budget = { envelope_width : float; staleness : float; merge_lag : float }

let theorem6_budget ?(slack = 2.0) ~shards ~batch ~queue_capacity () =
  if slack <= 0.0 then invalid_arg "Obs.Slo.theorem6_budget: slack <= 0";
  if shards < 1 || batch < 1 || queue_capacity < 1 then
    invalid_arg "Obs.Slo.theorem6_budget: shards/batch/queue_capacity < 1";
  (* Theorem 6 instantiated for this engine: each of the [shards] workers
     can hold one open batch plus a full shard queue of accepted-but-
     unmerged updates, so the envelope of any interleaved read is bounded
     by shards*(batch+queue_capacity); slack covers merger-queue
     residency, which the static bound cannot see. *)
  let in_flight = float_of_int (shards * (batch + queue_capacity)) *. slack in
  {
    envelope_width = in_flight;
    staleness = in_flight;
    merge_lag = Float.max 1.0 (float_of_int batch /. 64.0);
  }

type state = Ok | Warning | Breach

let state_to_string = function
  | Ok -> "ok"
  | Warning -> "warning"
  | Breach -> "breach"

let state_code = function Ok -> 0 | Warning -> 1 | Breach -> 2

type verdict = {
  state : state;
  worst_dim : string;
  worst_ratio : float;
  breaches : int;
}

type t = {
  budget : budget;
  warn_ratio : float;
  breach_after : int;
  clear_after : int;
  envelope : unit -> float;
  staleness : unit -> float;
  merge_lag : unit -> float;
  m : Mutex.t;
  mutable state : state;
  mutable over_streak : int;  (* consecutive evals with some ratio >= 1 *)
  mutable clean_streak : int;  (* consecutive evals fully under warn_ratio *)
  mutable breaches_n : int;
  mutable last : verdict;
  mutable ratios : (string * float) list;  (* last per-dimension burn *)
}

let default_budget =
  { envelope_width = 1e6; staleness = 1e6; merge_lag = 5.0 }

let create ?(budget = default_budget) ?(warn_ratio = 0.8) ?(breach_after = 5)
    ?(clear_after = 3) ?metrics ~envelope ~staleness ~merge_lag () =
  if warn_ratio <= 0.0 || warn_ratio > 1.0 then
    invalid_arg "Obs.Slo.create: warn_ratio outside (0,1]";
  if breach_after < 1 || clear_after < 1 then
    invalid_arg "Obs.Slo.create: breach_after/clear_after < 1";
  let t =
    {
      budget;
      warn_ratio;
      breach_after;
      clear_after;
      envelope;
      staleness;
      merge_lag;
      m = Mutex.create ();
      state = Ok;
      over_streak = 0;
      clean_streak = 0;
      breaches_n = 0;
      last = { state = Ok; worst_dim = "none"; worst_ratio = 0.0; breaches = 0 };
      ratios = [];
    }
  in
  (match metrics with
  | Some reg ->
      Registry.gauge_fn reg "slo_status"
        ~help:"Envelope SLO state: 0 ok, 1 warning, 2 breach" (fun () ->
          float_of_int (state_code t.state));
      Registry.gauge_fn reg "slo_burn_ratio"
        ~help:"Worst dimension's value / budget at last evaluation" (fun () ->
          t.last.worst_ratio);
      Registry.counter_fn reg "slo_breaches_total"
        ~help:"Times the SLO machine entered breach" (fun () -> t.breaches_n);
      List.iter
        (fun dim ->
          Registry.gauge_fn reg "slo_ratio"
            ~labels:[ ("dim", dim) ]
            ~help:"Per-dimension value / budget at last evaluation" (fun () ->
              match List.assoc_opt dim t.ratios with
              | Some r -> r
              | None -> 0.0))
        [ "envelope_width"; "staleness"; "merge_lag" ]
  | None -> ());
  t

let budget_of t = t.budget
let breaches t = t.breaches_n
let current t = t.last

(* A negative reading means "unknown" (no replica, no merges yet): score 0
   rather than poisoning the machine with a sentinel. *)
let ratio value limit =
  if value < 0.0 || limit <= 0.0 then 0.0 else value /. limit

let eval t =
  let e = ratio (t.envelope ()) t.budget.envelope_width in
  let s = ratio (t.staleness ()) t.budget.staleness in
  let l = ratio (t.merge_lag ()) t.budget.merge_lag in
  Mutex.lock t.m;
  t.ratios <-
    [ ("envelope_width", e); ("staleness", s); ("merge_lag", l) ];
  let worst_dim, worst_ratio =
    List.fold_left
      (fun (wd, wr) (d, r) -> if r > wr then (d, r) else (wd, wr))
      ("none", 0.0) t.ratios
  in
  if worst_ratio >= 1.0 then begin
    t.over_streak <- t.over_streak + 1;
    t.clean_streak <- 0
  end
  else if worst_ratio < t.warn_ratio then begin
    t.clean_streak <- t.clean_streak + 1;
    t.over_streak <- 0
  end
  else begin
    (* the hysteresis band: neither arming breach nor clearing warning *)
    t.over_streak <- 0;
    t.clean_streak <- 0
  end;
  (match t.state with
  | Ok -> if worst_ratio >= t.warn_ratio then t.state <- Warning
  | Warning ->
      if t.over_streak >= t.breach_after then begin
        t.state <- Breach;
        t.breaches_n <- t.breaches_n + 1
      end
      else if t.clean_streak >= t.clear_after then t.state <- Ok
  | Breach -> if t.clean_streak >= t.clear_after then t.state <- Warning);
  let v = { state = t.state; worst_dim; worst_ratio; breaches = t.breaches_n } in
  t.last <- v;
  Mutex.unlock t.m;
  v
