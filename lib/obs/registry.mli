(** The metrics registry: names and scrapes the repo's IVL instruments.

    Registration (cold path, mutex-guarded) hands back instruments whose
    hot paths never touch the registry again — a counter add is a striped
    fetch-and-add whether or not anything ever scrapes it. {!snapshot}
    walks the registered instruments and reads each one; per-instrument
    reads are IVL (see {!Snapshot}), and the walk holds no lock that any
    hot path can contend on.

    Instruments are identified by (name, label set). Constructors are
    get-or-create: asking twice for the same identity returns the same
    instrument (so components can wire metrics without threading handles),
    while asking for an existing identity {e as a different kind} raises.

    Besides owned instruments, existing state can be exported without
    restructuring it: {!counter_fn} and {!gauge_fn} register callbacks that
    the snapshot invokes at scrape time — how the pipeline exposes counters
    it already maintains as atomics, and how derived values like the live
    envelope-width gap are computed. Callbacks must be cheap and safe to
    call from the scraping domain. *)

type t

val create : ?now:(unit -> float) -> unit -> t
(** [now] (default [Unix.gettimeofday]) stamps snapshots — injectable for
    deterministic tests. *)

val counter : t -> ?help:string -> ?labels:(string * string) list -> string -> Counter.t
val gauge : t -> ?help:string -> ?labels:(string * string) list -> string -> Gauge.t

val histogram :
  t ->
  ?help:string ->
  ?labels:(string * string) list ->
  ?buckets:float array ->
  string ->
  Histogram.t

val timer :
  t ->
  ?help:string ->
  ?labels:(string * string) list ->
  ?quantiles:float list ->
  ?seed:int64 ->
  string ->
  Timer.t
(** [quantiles] (default [0.5; 0.9; 0.99; 1.0]) are the probes a snapshot
    reports for this timer. *)

val counter_fn :
  t -> ?help:string -> ?labels:(string * string) list -> string -> (unit -> int) -> unit
(** Export an existing monotone int (an [Atomic.t], a sum of them...) as a
    counter. Re-registering the same identity replaces the callback. *)

val gauge_fn :
  t -> ?help:string -> ?labels:(string * string) list -> string -> (unit -> float) -> unit
(** Export a derived value as a gauge, computed at scrape time. *)

val snapshot : t -> Snapshot.t
(** Read every instrument once. Samples are sorted by (name, labels) so
    output is deterministic modulo concurrent writes. *)
