type histogram_view = {
  cumulative : (float * int) array;
  h_count : int;
  h_sum : float;
}

type summary_view = {
  q : (float * float) list;
  s_count : int;
  s_sum : float;
}

type value =
  | Counter of int
  | Gauge of float
  | Histogram of histogram_view
  | Summary of summary_view

type sample = {
  name : string;
  help : string;
  labels : (string * string) list;
  value : value;
}

type t = { at : float; samples : sample list }

let find t ?(labels = []) name =
  let labels = List.sort compare labels in
  List.find_opt (fun s -> s.name = name && s.labels = labels) t.samples
  |> Option.map (fun s -> s.value)

let counter_value t ?labels name =
  match find t ?labels name with Some (Counter v) -> v | _ -> 0

let gauge_value t ?labels name =
  match find t ?labels name with Some (Gauge v) -> v | _ -> 0.0
