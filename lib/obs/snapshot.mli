(** One consistent-enough view of a registry: what scrapes and formatters
    share.

    "Consistent enough" is precise here: every sample is an intermediate-
    value read of its instrument (counters and histogram buckets are
    monotone, so each lies in its own [[v_inv, v_rsp]] envelope), but the
    snapshot as a whole is {e not} atomic across instruments — two counters
    scraped microseconds apart can disagree about which of them saw an
    event first. That is the paper's trade made deliberately: no scrape
    ever locks a hot path. *)

type histogram_view = {
  cumulative : (float * int) array;  (** (upper bound, count <= bound) *)
  h_count : int;
  h_sum : float;
}

type summary_view = {
  q : (float * float) list;  (** (phi, value) probes *)
  s_count : int;
  s_sum : float;
}

type value =
  | Counter of int
  | Gauge of float
  | Histogram of histogram_view
  | Summary of summary_view

type sample = {
  name : string;
  help : string;
  labels : (string * string) list;  (** sorted by key *)
  value : value;
}

type t = { at : float;  (** scrape wall-clock time *) samples : sample list }

val find : t -> ?labels:(string * string) list -> string -> value option
(** Look a sample up by name and (exact, order-insensitive) label set. *)

val counter_value : t -> ?labels:(string * string) list -> string -> int
(** Convenience: the counter's value, or 0 if absent/not a counter. *)

val gauge_value : t -> ?labels:(string * string) list -> string -> float
(** Convenience: the gauge's value, or 0 if absent/not a gauge. *)
