(* Ring slots are preallocated mutable records so an emit writes in place:
   no allocation, no write barrier beyond the tag pointer store. *)

type slot = { mutable stamp : int; mutable tag : string; mutable a : int; mutable b : int }

type ring = {
  slots : slot array;
  mutable written : int; (* single-writer; plain stores *)
}

type entry = { stamp : int; lane : int; tag : string; a : int; b : int }

type t = { clock : int Atomic.t; rings : ring array; capacity : int }

let create ~lanes ~capacity () =
  if lanes <= 0 then invalid_arg "Trace.create: lanes must be positive";
  if capacity <= 0 then invalid_arg "Trace.create: capacity must be positive";
  {
    clock = Conc.Padding.atomic 0;
    capacity;
    rings =
      Array.init lanes (fun _ ->
          {
            slots =
              Array.init capacity (fun _ ->
                  { stamp = -1; tag = ""; a = 0; b = 0 });
            written = 0;
          });
  }

let lanes t = Array.length t.rings
let capacity t = t.capacity

let emit t ~lane ~tag ~a ~b =
  let r = t.rings.(lane) in
  let s = r.slots.(r.written mod t.capacity) in
  s.stamp <- Atomic.fetch_and_add t.clock 1;
  s.tag <- tag;
  s.a <- a;
  s.b <- b;
  r.written <- r.written + 1

let written t ~lane = t.rings.(lane).written

let dropped t =
  Array.fold_left (fun acc r -> acc + max 0 (r.written - t.capacity)) 0 t.rings

let dump t =
  let acc = ref [] in
  Array.iteri
    (fun lane r ->
      let n = min r.written t.capacity in
      for i = 0 to n - 1 do
        let s = r.slots.(i) in
        if s.stamp >= 0 then
          acc := { stamp = s.stamp; lane; tag = s.tag; a = s.a; b = s.b } :: !acc
      done)
    t.rings;
  List.sort (fun x y -> Int.compare x.stamp y.stamp) !acc

let dump_tail t n =
  let all = dump t in
  let len = List.length all in
  if len <= n then all else List.filteri (fun i _ -> i >= len - n) all
