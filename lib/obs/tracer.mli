(** The tracing decision point and span sink.

    One tracer per process tier (client, server+engine, replica). Two
    operations matter:

    - {!sample} — taken once per batch at the edge (client [push] path,
      or a bench feeder). A deterministic SplitMix64 die decides whether
      this batch is traced: roughly one in [sample_every] batches gets a
      fresh nonzero {!Span.context}; the rest get {!Span.zero} and every
      downstream stage short-circuits. Same seed ⇒ same decision sequence,
      so tests pin the dice.
    - {!record} — called by each stage as it completes, with the context
      it was handed. No-op on a zero context (the hot path is one load and
      one compare). For sampled work it mints a span id, stamps a
      tracer-local monotone tick, appends the span to a bounded in-memory
      ring (what [/trace?n=K] serves), optionally mirrors a compact event
      into an {!Trace} lane, and feeds the duration into a per-stage KLL
      timer ([trace_stage_seconds{stage="..."}]).

    Recording takes a mutex — acceptable because only sampled batches
    (1/[sample_every]) ever reach it; the unsampled path is wait-free. *)

type t

val create :
  ?sample_every:int ->
  ?seed:int64 ->
  ?keep:int ->
  ?trace:Trace.t ->
  ?lane:int ->
  ?metrics:Registry.t ->
  unit ->
  t
(** [sample_every] (default 64): expected batches per sampled trace; [1]
    traces everything, [0] disables sampling entirely. [keep] (default
    512) bounds the recent-span ring. [trace]/[lane] mirror each recorded
    span into an existing lossy trace ring. [metrics] registers
    [trace_sampled_total], [trace_spans_total], [trace_spans_dropped_total]
    and lazily one [trace_stage_seconds] timer per stage.
    @raise Invalid_argument if [sample_every < 0] or [keep <= 0]. *)

val sample_every : t -> int

val sample : t -> Span.context option
(** Roll the die for a fresh batch: [Some ctx] with a nonzero trace id
    (parent 0 — the root) about once per [sample_every] calls, [None]
    otherwise. Thread-safe. *)

val now_ns : unit -> int
(** Wall-clock nanoseconds — the stage timestamp base. *)

val record :
  t -> ctx:Span.context -> stage:string -> start_ns:int -> end_ns:int -> int64
(** [record t ~ctx ~stage ~start_ns ~end_ns] logs one completed stage and
    returns its minted span id — pass it downstream via
    {!Span.with_parent}. Returns [0L] without recording when [ctx] is
    {!Span.zero}. [stage] must be a preallocated constant (it is stored by
    reference in the trace ring). *)

val recent : t -> int -> Span.record list
(** The most recent [n] spans, oldest first. Spans beyond the [keep]
    window are gone (counted in [trace_spans_dropped_total]). *)

val spans : t -> int
(** Spans ever recorded. *)

val sampled : t -> int
(** Contexts ever handed out by {!sample}. *)
