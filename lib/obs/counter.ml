type t = Conc.Striped_total.t

let create ?slots () =
  let slots =
    match slots with
    | Some s -> s
    | None -> Domain.recommended_domain_count () + 4
  in
  Conc.Striped_total.create ~slots

let add = Conc.Striped_total.add
let incr t = add t 1
let read = Conc.Striped_total.read
