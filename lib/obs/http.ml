(* One accept domain, 50ms select poll (a blocked accept would never
   notice [closing]), connections served inline to completion. Scrape
   requests are a few hundred bytes and responses are one string, so
   inline serving keeps the module to a single domain with nothing to
   reap. *)

type response = { status : int; content_type : string; body : string }

let response ?(status = 200) ?(content_type = "text/plain; version=0.0.4")
    body =
  { status; content_type; body }

type handler = path:string -> query:(string * string) list -> response option

type t = {
  lsock : Unix.file_descr;
  port_ : int;
  handler : handler;
  mutable closing : bool;
  mutable accept_d : unit Domain.t option;
  requests_n : int Atomic.t;
}

let status_text = function
  | 200 -> "OK"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 503 -> "Service Unavailable"
  | _ -> "Status"

let read_request fd =
  (* Read until the blank line ending the header block; scrape requests
     have no body. Bounded so a hostile peer cannot grow the buffer. *)
  let buf = Buffer.create 256 in
  let chunk = Bytes.create 512 in
  let rec loop () =
    if Buffer.length buf > 8192 then None
    else
      let seen = Buffer.contents buf in
      if
        String.length seen >= 4
        && String.sub seen (String.length seen - 4) 4 = "\r\n\r\n"
      then Some seen
      else
        match Unix.read fd chunk 0 (Bytes.length chunk) with
        | 0 -> if Buffer.length buf > 0 then Some (Buffer.contents buf) else None
        | n ->
            Buffer.add_subbytes buf chunk 0 n;
            loop ()
        | exception _ -> None
  in
  loop ()

let parse_query q =
  String.split_on_char '&' q
  |> List.filter_map (fun kv ->
         if kv = "" then None
         else
           match String.index_opt kv '=' with
           | Some i ->
               Some
                 ( String.sub kv 0 i,
                   String.sub kv (i + 1) (String.length kv - i - 1) )
           | None -> Some (kv, ""))

let parse_request raw =
  (* "GET /path?query HTTP/1.1\r\n..." *)
  match String.index_opt raw '\r' with
  | None -> None
  | Some eol -> (
      let line = String.sub raw 0 eol in
      match String.split_on_char ' ' line with
      | [ meth; target; _version ] when meth = "GET" || meth = "HEAD" -> (
          match String.index_opt target '?' with
          | Some i ->
              Some
                ( String.sub target 0 i,
                  parse_query
                    (String.sub target (i + 1) (String.length target - i - 1))
                )
          | None -> Some (target, []))
      | _ -> None)

let write_all fd s =
  let b = Bytes.of_string s in
  let len = Bytes.length b in
  let off = ref 0 in
  (try
     while !off < len do
       off := !off + Unix.write fd b !off (len - !off)
     done
   with _ -> ())

let respond fd (r : response) =
  write_all fd
    (Printf.sprintf
       "HTTP/1.1 %d %s\r\n\
        Content-Type: %s\r\n\
        Content-Length: %d\r\n\
        Connection: close\r\n\
        \r\n\
        %s"
       r.status (status_text r.status) r.content_type
       (String.length r.body) r.body)

let serve_conn t fd =
  (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO 2.0 with _ -> ());
  Atomic.incr t.requests_n;
  (match read_request fd with
  | None -> ()
  | Some raw -> (
      match parse_request raw with
      | None -> respond fd (response ~status:400 "bad request\n")
      | Some (path, query) -> (
          match
            try t.handler ~path ~query
            with _ -> Some (response ~status:503 "handler error\n")
          with
          | Some r -> respond fd r
          | None -> respond fd (response ~status:404 "not found\n"))));
  try Unix.close fd with _ -> ()

let accept_loop t =
  while not t.closing do
    match Unix.select [ t.lsock ] [] [] 0.05 with
    | [], _, _ -> ()
    | _ -> (
        match Unix.accept t.lsock with
        | fd, _ -> serve_conn t fd
        | exception _ -> if not t.closing then Unix.sleepf 0.005)
    | exception _ -> if not t.closing then Unix.sleepf 0.005
  done

let create ?(host = "127.0.0.1") ?(port = 0) ~handler () =
  let lsock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt lsock Unix.SO_REUSEADDR true;
  (try Unix.bind lsock (Unix.ADDR_INET (Unix.inet_addr_of_string host, port))
   with e ->
     (try Unix.close lsock with _ -> ());
     raise e);
  Unix.listen lsock 16;
  let port_ =
    match Unix.getsockname lsock with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> port
  in
  let t =
    {
      lsock;
      port_;
      handler;
      closing = false;
      accept_d = None;
      requests_n = Atomic.make 0;
    }
  in
  t.accept_d <- Some (Domain.spawn (fun () -> accept_loop t));
  t

let port t = t.port_
let requests t = Atomic.get t.requests_n

let stop t =
  if not t.closing then begin
    t.closing <- true;
    (match t.accept_d with Some d -> Domain.join d | None -> ());
    t.accept_d <- None;
    try Unix.close t.lsock with _ -> ()
  end

(* ---------------- the standard telemetry routes ---------------- *)

let json_kv b (k, v) =
  Buffer.add_char b '"';
  Buffer.add_string b k;
  Buffer.add_string b "\":\"";
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    v;
  Buffer.add_char b '"'

let healthz ?slo ?health () =
  let b = Buffer.create 256 in
  Buffer.add_char b '{';
  let status =
    match slo with
    | Some s ->
        let v = Slo.eval s in
        Buffer.add_string b
          (Printf.sprintf
             "\"slo\":{\"state\":\"%s\",\"worst_dim\":\"%s\",\"worst_ratio\":%.4f,\"breaches\":%d},"
             (Slo.state_to_string v.Slo.state)
             v.Slo.worst_dim v.Slo.worst_ratio v.Slo.breaches);
        if v.Slo.state = Slo.Breach then 503 else 200
    | None -> 200
  in
  Buffer.add_string b "\"status\":";
  Buffer.add_string b (if status = 200 then "\"ok\"" else "\"breach\"");
  (match health with
  | Some f ->
      List.iter
        (fun kv ->
          Buffer.add_char b ',';
          json_kv b kv)
        (f ())
  | None -> ());
  Buffer.add_char b '}';
  (status, Buffer.contents b)

let telemetry_handler ~registry ?tracer ?slo ?health () ~path ~query =
  match path with
  | "/metrics" ->
      Some (response (Expose.to_prometheus (Registry.snapshot registry)))
  | "/metrics.json" ->
      Some
        (response ~content_type:"application/json"
           (Expose.to_json (Registry.snapshot registry)))
  | "/healthz" ->
      let status, body = healthz ?slo ?health () in
      Some (response ~status ~content_type:"application/json" (body ^ "\n"))
  | "/trace" ->
      let n =
        match List.assoc_opt "n" query with
        | Some s -> ( match int_of_string_opt s with Some n -> n | None -> 64)
        | None -> 64
      in
      let spans =
        match tracer with Some tr -> Tracer.recent tr n | None -> []
      in
      let body =
        "[" ^ String.concat "," (List.map Span.record_to_json spans) ^ "]\n"
      in
      Some (response ~content_type:"application/json" body)
  | _ -> None
