type instrument =
  | I_counter of Counter.t
  | I_counter_fn of (unit -> int)
  | I_gauge of Gauge.t
  | I_gauge_fn of (unit -> float)
  | I_histogram of Histogram.t
  | I_timer of Timer.t * float list

type reg = {
  name : string;
  help : string;
  labels : (string * string) list; (* sorted *)
  mutable instrument : instrument;
}

type t = {
  m : Mutex.t;
  mutable regs : reg list; (* registration order; sorted at snapshot *)
  now : unit -> float;
}

let create ?(now = Unix.gettimeofday) () = { m = Mutex.create (); regs = []; now }

let kind_name = function
  | I_counter _ | I_counter_fn _ -> "counter"
  | I_gauge _ | I_gauge_fn _ -> "gauge"
  | I_histogram _ -> "histogram"
  | I_timer _ -> "summary"

(* Get-or-create under the registry mutex. [same] decides whether an
   existing instrument satisfies the request; [make] builds a fresh one. *)
let intern t ~name ~help ~labels ~same ~make =
  let labels = List.sort compare labels in
  Mutex.lock t.m;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.m)
    (fun () ->
      match
        List.find_opt (fun r -> r.name = name && r.labels = labels) t.regs
      with
      | Some r -> (
          match same r.instrument with
          | Some v -> v
          | None ->
              invalid_arg
                (Printf.sprintf
                   "Obs.Registry: %s%s is already registered as a %s" name
                   (if labels = [] then ""
                    else
                      "{"
                      ^ String.concat ","
                          (List.map (fun (k, v) -> k ^ "=" ^ v) labels)
                      ^ "}")
                   (kind_name r.instrument)))
      | None ->
          let instrument, v = make () in
          t.regs <- { name; help; labels; instrument } :: t.regs;
          v)

let counter t ?(help = "") ?(labels = []) name =
  intern t ~name ~help ~labels
    ~same:(function I_counter c -> Some c | _ -> None)
    ~make:(fun () ->
      let c = Counter.create () in
      (I_counter c, c))

let gauge t ?(help = "") ?(labels = []) name =
  intern t ~name ~help ~labels
    ~same:(function I_gauge g -> Some g | _ -> None)
    ~make:(fun () ->
      let g = Gauge.create () in
      (I_gauge g, g))

let histogram t ?(help = "") ?(labels = []) ?buckets name =
  intern t ~name ~help ~labels
    ~same:(function I_histogram h -> Some h | _ -> None)
    ~make:(fun () ->
      let h = Histogram.create ?buckets () in
      (I_histogram h, h))

let timer t ?(help = "") ?(labels = []) ?(quantiles = [ 0.5; 0.9; 0.99; 1.0 ])
    ?(seed = 0x0B5EL) name =
  intern t ~name ~help ~labels
    ~same:(function I_timer (tm, _) -> Some tm | _ -> None)
    ~make:(fun () ->
      let tm = Timer.create ~seed () in
      (I_timer (tm, quantiles), tm))

(* Callback registrations replace rather than raise: a restarted component
   re-exporting the same derived value is pointing the scrape at its fresh
   state, which is exactly what the caller wants (Recovery re-runs do this). *)
let register_fn t ~name ~help ~labels instrument =
  let labels = List.sort compare labels in
  Mutex.lock t.m;
  (match
     List.find_opt (fun r -> r.name = name && r.labels = labels) t.regs
   with
  | Some r ->
      if kind_name r.instrument <> kind_name instrument then begin
        Mutex.unlock t.m;
        invalid_arg
          (Printf.sprintf "Obs.Registry: %s is already registered as a %s" name
             (kind_name r.instrument))
      end
      else r.instrument <- instrument
  | None -> t.regs <- { name; help; labels; instrument } :: t.regs);
  Mutex.unlock t.m

let counter_fn t ?(help = "") ?(labels = []) name f =
  register_fn t ~name ~help ~labels (I_counter_fn f)

let gauge_fn t ?(help = "") ?(labels = []) name f =
  register_fn t ~name ~help ~labels (I_gauge_fn f)

let sample_of (r : reg) : Snapshot.sample =
  let value =
    match r.instrument with
    | I_counter c -> Snapshot.Counter (Counter.read c)
    | I_counter_fn f -> Snapshot.Counter (f ())
    | I_gauge g -> Snapshot.Gauge (Gauge.read g)
    | I_gauge_fn f -> Snapshot.Gauge (f ())
    | I_histogram h ->
        Snapshot.Histogram
          {
            Snapshot.cumulative = Histogram.cumulative h;
            h_count = Histogram.count h;
            h_sum = Histogram.sum h;
          }
    | I_timer (tm, phis) ->
        Snapshot.Summary
          {
            Snapshot.q = Timer.quantiles tm phis;
            s_count = Timer.count tm;
            s_sum = Timer.sum tm;
          }
  in
  { Snapshot.name = r.name; help = r.help; labels = r.labels; value }

let snapshot t =
  Mutex.lock t.m;
  let regs = t.regs in
  Mutex.unlock t.m;
  let samples =
    List.map sample_of regs
    |> List.sort (fun (a : Snapshot.sample) b ->
           compare (a.name, a.labels) (b.name, b.labels))
  in
  { Snapshot.at = t.now (); samples }
