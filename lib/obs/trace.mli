(** Per-domain trace rings: lossy-by-design event timelines.

    {!Conc.Recorder} totally orders every operation (two fetch-and-adds and
    a list cell per op) — great for checking, too heavy to leave enabled in
    a throughput run. A [Trace.t] is the production-grade alternative: each
    domain owns a fixed-size ring of {e preallocated} event records, an
    [emit] is three plain stores into the writer's own ring plus one
    fetch-and-add on the global stamp clock (0 B/op, no locks, no lists),
    and when the ring wraps the oldest events are silently overwritten —
    loss is by design and is {e accounted}: [dropped] reports exactly how
    many events each lane overwrote.

    Stamps come from one shared atomic tick, so merging the rings by stamp
    reconstructs a cross-domain timeline that respects real time the same
    way Recorder tickets do (happens-before implies a smaller stamp) — what
    you need to see a merge/restart/recovery sequence after the fact.

    Single-writer contract: lane [d] may only be written from one domain at
    a time (the engine gives each shard worker, the merger and the watchdog
    their own lanes). [dump] while writers are active is safe but lossy and
    approximate — wrapping writers can overwrite events mid-read; dump after
    quiescing for exact timelines. *)

type entry = {
  stamp : int;  (** global tick: smaller = earlier (cross-domain valid) *)
  lane : int;  (** the ring (= writing domain slot) that logged it *)
  tag : string;
  a : int;  (** event payload, tag-specific (e.g. epoch, shard) *)
  b : int;
}

type t

val create : lanes:int -> capacity:int -> unit -> t
(** [lanes] single-writer rings of [capacity] events each.
    @raise Invalid_argument if either is non-positive. *)

val lanes : t -> int
val capacity : t -> int

val emit : t -> lane:int -> tag:string -> a:int -> b:int -> unit
(** Log one event on [lane]. Wait-free, 0 B/op ([tag] is stored by
    reference — pass preallocated constants, not built strings). *)

val written : t -> lane:int -> int
(** Events ever emitted on the lane. *)

val dropped : t -> int
(** Events overwritten across all lanes: [Σ max 0 (written − capacity)]. *)

val dump : t -> entry list
(** All surviving events, merged across lanes, ascending by stamp. *)

val dump_tail : t -> int -> entry list
(** The most recent [n] surviving events, ascending by stamp. *)
