(** A monotone metrics counter whose reads are IVL by construction.

    The hot path is {!Conc.Striped_total}: writers fetch-and-add into
    per-domain padded slots (wait-free, zero allocation), and a scrape sums
    the slots. The sum is an {e intermediate-value} read in the paper's
    sense — the scan interleaves with concurrent adds, but each slot is
    monotone, so per Lemma 10 every read lies in [[v_inv, v_rsp]]. No lock
    is ever taken: concurrent scrapes cost the writers nothing beyond the
    cache traffic of the scan itself. *)

type t

val create : ?slots:int -> unit -> t
(** [slots] defaults to a few more than
    [Domain.recommended_domain_count ()]. *)

val add : t -> int -> unit
(** Add [v] (any domain, any time). Wait-free, 0 B/op. *)

val incr : t -> unit

val read : t -> int
(** IVL read: any intermediate value between the counter's value at the
    read's invocation and at its response. Successive reads from one domain
    are monotone. *)
