(* Observations are stored in the KLL sketch as integer nanounits: the
   sketch is int-typed, and 1e-9 resolution comfortably covers latencies. *)

type stripe = {
  m : Mutex.t;
  mutable q : Sketches.Quantiles.t;
  mutable count : int;
  mutable sum_nano : int;
}

type t = { stripes : stripe array }

let create ?stripes ?(k = 200) ~seed () =
  let stripes =
    match stripes with
    | Some s when s <= 0 -> invalid_arg "Timer.create: stripes must be positive"
    | Some s -> s
    | None -> Domain.recommended_domain_count () + 4
  in
  if k < 2 then invalid_arg "Timer.create: k must be >= 2";
  let root = Rng.Splitmix.create seed in
  {
    stripes =
      Array.init stripes (fun _ ->
          {
            m = Mutex.create ();
            q = Sketches.Quantiles.create ~k ~seed:(Rng.Splitmix.next_int64 root) ();
            count = 0;
            sum_nano = 0;
          });
  }

let stripe_of t = (Domain.self () :> int) mod Array.length t.stripes

let observe t v =
  let s = t.stripes.(stripe_of t) in
  let nano = int_of_float (v *. 1e9) in
  Mutex.lock s.m;
  Sketches.Quantiles.update s.q nano;
  s.count <- s.count + 1;
  s.sum_nano <- s.sum_nano + nano;
  Mutex.unlock s.m

let time t f =
  let t0 = Unix.gettimeofday () in
  Fun.protect ~finally:(fun () -> observe t (Unix.gettimeofday () -. t0)) f

(* Copy each stripe under its own lock, merge outside the locks. The merged
   view is an intermediate-value scrape: stripes copied early miss
   observations that land while later stripes are copied, exactly the
   Striped_total read semantics lifted to sketches. *)
let collect t =
  let copies =
    Array.map
      (fun s ->
        Mutex.lock s.m;
        let q = Sketches.Quantiles.copy s.q
        and count = s.count
        and sum_nano = s.sum_nano in
        Mutex.unlock s.m;
        (q, count, sum_nano))
      t.stripes
  in
  let merged =
    Array.fold_left
      (fun acc (q, _, _) ->
        if Sketches.Quantiles.total q = 0 then acc
        else match acc with None -> Some q | Some m -> Some (Sketches.Quantiles.merge m q))
      None copies
  in
  let count = Array.fold_left (fun a (_, c, _) -> a + c) 0 copies in
  let sum_nano = Array.fold_left (fun a (_, _, s) -> a + s) 0 copies in
  (merged, count, sum_nano)

let count t =
  let _, c, _ = collect t in
  c

let sum t =
  let _, _, s = collect t in
  float_of_int s *. 1e-9

let quantile_of merged phi =
  if phi < 0.0 || phi > 1.0 then invalid_arg "Timer.quantile: phi outside [0,1]";
  match merged with
  | None -> 0.0
  | Some m -> float_of_int (Sketches.Quantiles.quantile m phi) *. 1e-9

let quantile t phi =
  let merged, _, _ = collect t in
  quantile_of merged phi

let quantiles t phis =
  let merged, _, _ = collect t in
  List.map (fun phi -> (phi, quantile_of merged phi)) phis
