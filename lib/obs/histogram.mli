(** A concurrent log-bucketed histogram for latency-style observations.

    Fixed upper-bound buckets (default: geometric from 1 µs to ~67 s); an
    observation finds its bucket with a linear scan over the (short, cached)
    bound array and fetch-and-adds one padded atomic bucket counter plus a
    striped nanosecond sum — wait-free and 0 B/op, safe from any domain.

    A scrape reads the bucket counters one by one: each counter is monotone,
    so the cumulative view is an intermediate-value read exactly like
    {!Counter.read} — the scrape may split a concurrent observation between
    [count] and [sum], but every per-bucket count lies in its own
    [[v_inv, v_rsp]] envelope and the total is never off by more than the
    observations in flight during the scan.

    Quantiles are estimated from the cumulative buckets by linear
    interpolation inside the target bucket — resolution is the bucket width
    (a factor of 2 by default), which is the histogram trade-off; use
    {!Timer} when tighter quantiles are worth a mutex on the observe path. *)

type t

val default_buckets : float array
(** 1e-6 ... ~67.1: 27 geometric upper bounds, factor 2. *)

val create : ?buckets:float array -> unit -> t
(** [buckets] are finite upper bounds, strictly increasing; an implicit
    +inf bucket catches the rest. @raise Invalid_argument if empty or not
    strictly increasing. *)

val observe : t -> float -> unit
(** Record one observation (e.g. seconds). Wait-free, 0 B/op. *)

val count : t -> int
(** Observations so far (IVL read). *)

val sum : t -> float
(** Sum of observed values, accumulated in integer nanounits (1e-9 of the
    observed unit) — exact to 1e-9, overflows after ~9.2e9 unit-sums. *)

val cumulative : t -> (float * int) array
(** [(upper_bound, observations <= bound)] pairs, including the final
    [(infinity, count)] bucket — the Prometheus exposition shape. *)

val quantile : t -> float -> float
(** Estimated [phi]-quantile from the cumulative buckets (linear
    interpolation within the bucket; the +inf bucket clamps to the largest
    finite bound). 0 on an empty histogram.
    @raise Invalid_argument outside [0,1]. *)
