(** A last-value-wins gauge: one padded plain float store.

    The cell is the middle slot of a float array long enough that the hot
    word shares no cache line with any neighbouring block, so a gauge
    updated on every batch loop never false-shares with other metrics.
    Stores and loads are plain (non-atomic): word-sized float array slots
    never tear, a racing read returns some previously stored value, and
    that is exactly the semantics a gauge needs — there is no envelope to
    maintain because a gauge is not monotone.

    Any domain may [set]; with multiple setters the scrape sees one of the
    racing values (last-wins per the memory order the hardware provides).
    Gauges whose value is derived from other state (queue depths, epochs)
    are better registered as callbacks ({!Registry.gauge_fn}). *)

type t

val create : ?initial:float -> unit -> t

val set : t -> float -> unit
(** Plain store, 0 B/op. *)

val read : t -> float
