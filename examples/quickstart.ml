(* Quickstart: the two objects the paper builds, in five minutes.

   1. A concurrent CountMin sketch (PCM, Section 5): ingest a stream from
      several domains in parallel, query while ingesting — IVL guarantees
      the answers stay inside the error envelope of the sequential sketch.
   2. The IVL batched counter (Algorithm 2): O(1) updates from each domain,
      O(n) reads that always land between the counter's value at the read's
      start and at its end.

   Run with: dune exec examples/quickstart.exe *)

let () =
  print_endline "=== IVL quickstart ===";
  print_endline "";

  (* --- Concurrent CountMin ------------------------------------- *)
  (* Size the sketch from the target error: estimate within alpha*n with
     probability at least 1 - delta. *)
  let pcm = Conc.Pcm.create_for_error ~seed:42L ~alpha:0.01 ~delta:0.01 in
  Printf.printf "PCM sketch: %d rows x %d counters\n" (Conc.Pcm.rows pcm)
    (Conc.Pcm.width pcm);

  (* A skewed stream: element 0 is the most frequent. *)
  let stream =
    Workload.Stream.generate ~seed:7L (Workload.Stream.Zipf (10_000, 1.2))
      ~length:200_000
  in
  let chunks = Workload.Stream.chunks stream ~pieces:4 in

  (* Ingest from 4 domains in parallel; query concurrently from a 5th. *)
  let _ =
    Conc.Runner.parallel ~domains:5 (fun i ->
        if i < 4 then Array.iter (Conc.Pcm.update pcm) chunks.(i)
        else
          for round = 1 to 3 do
            let est = Conc.Pcm.query pcm 0 in
            Printf.printf "  [mid-ingest read %d] element 0 frequency so far: %d\n"
              round est
          done)
  in

  (* Ground truth for comparison. *)
  let exact = Sketches.Exact.create () in
  Array.iter (Sketches.Exact.update exact) stream;
  List.iter
    (fun a ->
      Printf.printf "  element %-5d true=%-6d estimated=%-6d (+%d)\n" a
        (Sketches.Exact.frequency exact a)
        (Conc.Pcm.query pcm a)
        (Conc.Pcm.query pcm a - Sketches.Exact.frequency exact a))
    [ 0; 1; 2; 100; 9999 ];
  Printf.printf "  error bound alpha*n = %.0f\n" (0.01 *. float_of_int (Array.length stream));
  print_endline "";

  (* --- IVL batched counter ------------------------------------- *)
  let domains = 4 in
  let counter = Conc.Ivl_counter.create ~procs:domains in
  let per_domain = 50_000 in
  let _ =
    Conc.Runner.parallel ~domains:(domains + 1) (fun i ->
        if i < domains then
          for _ = 1 to per_domain do
            Conc.Ivl_counter.update counter ~proc:i 1
          done
        else
          for round = 1 to 3 do
            Printf.printf "  [concurrent read %d] counter = %d\n" round
              (Conc.Ivl_counter.read counter)
          done)
  in
  Printf.printf "  final counter value: %d (expected %d)\n"
    (Conc.Ivl_counter.read counter)
    (domains * per_domain);
  print_endline "";
  print_endline "Every concurrent read above is an intermediate value: at least the";
  print_endline "counter's value when the read started, at most its value when it";
  print_endline "returned. That is Intermediate Value Linearizability."
