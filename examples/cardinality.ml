(* Distinct-flow counting across ingestion domains — the cardinality family
   (HyperLogLog) the paper's introduction cites alongside frequency sketches.

   Four domains observe overlapping slices of a flow-id stream and feed one
   shared concurrent HyperLogLog built from atomic max registers. Because
   every register is monotone, concurrent estimates carry the IVL guarantee:
   each read is bounded between the sketch's value when the read began and
   when it returned, and the sequential HLL accuracy analysis transfers
   (Theorem 6). A fifth domain watches the live estimate grow.

   Run with: dune exec examples/cardinality.exe *)

let true_distinct = 200_000
let observations_per_domain = 150_000

let () =
  Printf.printf "=== concurrent distinct counting: %d true flows ===\n\n" true_distinct;
  let hll = Conc.Hll_conc.create ~p:13 ~seed:2024L () in
  let watched = ref [] in
  let _ =
    Conc.Runner.parallel ~domains:5 (fun i ->
        if i < 4 then begin
          (* Each domain sees a random-looking, heavily overlapping slice:
             flows are shared infrastructure, not partitioned. *)
          let g = Rng.Splitmix.create (Int64.of_int (100 + i)) in
          for _ = 1 to observations_per_domain do
            Conc.Hll_conc.update hll (1 + Rng.Splitmix.next_int g true_distinct)
          done
        end
        else
          for tick = 1 to 5 do
            let e = Conc.Hll_conc.estimate hll in
            watched := (tick, e) :: !watched
          done)
  in
  List.iter
    (fun (tick, e) -> Printf.printf "live estimate %d: %.0f distinct flows\n" tick e)
    (List.rev !watched);
  let final = Conc.Hll_conc.estimate hll in
  let seen =
    (* Not every flow id is drawn; compute the exact expectation-free truth. *)
    let marks = Bytes.make (true_distinct + 1) '\000' in
    for i = 0 to 3 do
      let g = Rng.Splitmix.create (Int64.of_int (100 + i)) in
      for _ = 1 to observations_per_domain do
        Bytes.set marks (1 + Rng.Splitmix.next_int g true_distinct) '\001'
      done
    done;
    let c = ref 0 in
    Bytes.iter (fun b -> if b = '\001' then incr c) marks;
    !c
  in
  Printf.printf "\nfinal estimate: %.0f   exact distinct observed: %d   error: %+.2f%%\n"
    final seen
    (100.0 *. (final -. float_of_int seen) /. float_of_int seen);
  print_endline "\nThe registers only grow, so every mid-ingest estimate above was an";
  print_endline "intermediate value of the sketch over the reader's interval — IVL,";
  print_endline "with the sequential HyperLogLog error bound intact."
