(* A relaxed task scheduler — the paper's "semi-quantitative" future work in
   action.

   Phase 1: worker domains submit deadline-stamped tasks to a shared
   MultiQueue in parallel. Phase 2: they drain it in parallel, recording the
   global order in which tasks were claimed (one atomic ticket per claim).

   With an exact priority queue and serialized claims, the merged claim
   sequence would be non-decreasing in deadline. The MultiQueue is relaxed:
   a claim may return a near-minimal task instead, so inversions appear —
   but their magnitude is bounded by the structure (O(#heaps) ranks in
   expectation), which is exactly the quantitative envelope IVL-style
   reasoning wants for the priority component of semi-quantitative objects
   (paper, Section 7). The run quantifies those inversions.

   Run with: dune exec examples/task_scheduler.exe *)

let tasks_per_worker = 25_000
let workers = 4

let () =
  Printf.printf "=== relaxed task scheduler: %d workers x %d tasks ===\n\n" workers
    tasks_per_worker;
  let mq = Pq.Multiqueue.create ~c:4 ~seed:5L ~domains:workers () in

  (* Phase 1: parallel submission. *)
  let _ =
    Conc.Runner.parallel ~domains:workers (fun i ->
        let g = Rng.Splitmix.create (Int64.of_int (10 + i)) in
        for k = 1 to tasks_per_worker do
          Pq.Multiqueue.insert mq ~domain:i
            ~priority:(Rng.Splitmix.next_int g 1_000_000)
            ((i * tasks_per_worker) + k)
        done)
  in
  Printf.printf "submitted %d tasks across %d heaps\n" (Pq.Multiqueue.size mq)
    (Pq.Multiqueue.queues mq);

  (* Phase 2: parallel drain, recording (ticket, deadline). *)
  let ticket = Atomic.make 0 in
  let logs =
    Conc.Runner.parallel ~domains:workers (fun i ->
        let acc = ref [] in
        let rec go () =
          match Pq.Multiqueue.delete_min mq ~domain:i with
          | None -> ()
          | Some (deadline, _) ->
              acc := (Atomic.fetch_and_add ticket 1, deadline) :: !acc;
              go ()
        in
        go ();
        !acc)
  in
  let claims =
    Array.to_list logs |> List.concat
    |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
    |> List.map snd
  in
  Printf.printf "drained %d tasks\n\n" (List.length claims);

  (* Inversions against the running maximum: an exact serialized scheduler
     would show zero. *)
  let inversions = ref 0 in
  let magnitudes = ref [] in
  let running_max = ref min_int in
  List.iter
    (fun deadline ->
      if deadline < !running_max then begin
        incr inversions;
        magnitudes := float_of_int (!running_max - deadline) :: !magnitudes
      end
      else running_max := deadline)
    claims;
  let n = List.length claims in
  Printf.printf "claim-order inversions: %d of %d (%.1f%%)\n" !inversions n
    (100.0 *. float_of_int !inversions /. float_of_int n);
  (match !magnitudes with
  | [] -> ()
  | ms ->
      let arr = Array.of_list ms in
      Printf.printf "inversion magnitude (deadline units of 1e6): median %.0f, p99 %.0f\n"
        (Stats.Percentile.median arr)
        (Stats.Percentile.percentile arr 99.0));
  print_endline "";
  print_endline "Inversions are the price of contention-free scheduling; their bounded";
  print_endline "magnitude is the intermediate-value guarantee in the priority domain.";
  print_endline "Set c=1 and one domain to recover the exact scheduler (zero inversions)."
