(* The checkers at work: replay the paper's Example 9 and Figure 2 and watch
   linearizability fail where IVL holds.

   Run with: dune exec examples/checker_demo.exe *)

let pp_int = Format.pp_print_int

let show_witness ops =
  ops
  |> List.map (fun op -> Format.asprintf "%a" (Hist.Op.pp ~pp_u:pp_int ~pp_q:pp_int ~pp_v:pp_int) op)
  |> String.concat "\n    "

(* ---- Example 9: concurrent CountMin ---------------------------------- *)

(* Hash functions pinned to the paper's collisions (0-indexed): element 0 is
   the paper's a, element 2 its b; elements 1 and 3 fill the matrix. *)
let family =
  Hashing.Family.of_mapping ~width:2
    [|
      (fun x -> match x with 0 | 1 -> 0 | _ -> 1);
      (fun x -> match x with 0 | 2 -> 0 | _ -> 1);
    |]

module Cm = Spec.Countmin_spec.Fixed (struct
  let family = family
end)

module Cm_check = Ivl.Check.Make (Cm)
module Cm_lin = Ivl.Lincheck.Make (Cm)

let example9 () =
  print_endline "=== Example 9: PCM is IVL but not linearizable ===\n";
  let mk_upd ~id e = { Hist.Op.id; proc = 0; obj = 0; kind = Hist.Op.Update e; ret = None } in
  let mk_qry ~id ~ret e =
    { Hist.Op.id; proc = 1; obj = 0; kind = Hist.Op.Query e; ret = Some ret }
  in
  let prefix = List.mapi (fun i e -> mk_upd ~id:(i + 1) e) [ 0; 2; 3; 3; 3 ] in
  let u = mk_upd ~id:6 0 in
  let q1 = mk_qry ~id:7 ~ret:2 0 in
  let q2 = mk_qry ~id:8 ~ret:2 2 in
  let h =
    Hist.History.of_events
      (List.concat_map (fun op -> [ Hist.History.inv op; Hist.History.rsp op ]) prefix
      @ [
          Hist.History.inv u;
          Hist.History.inv q1;
          Hist.History.rsp q1;
          Hist.History.inv q2;
          Hist.History.rsp q2;
          Hist.History.rsp u;
        ])
  in
  print_endline "history (update(0) spans both queries; both return 2):";
  print_endline (Hist.Ascii.render_int h);
  let lin = Cm_lin.check h in
  Printf.printf "\nlinearizable? %b\n" lin.Cm_lin.linearizable;
  let ivl = Cm_check.check h in
  Printf.printf "IVL?          %b\n" ivl.Cm_check.ivl;
  (match ivl.Cm_check.lower with
  | Some w -> Printf.printf "\n  H1 (lower witness):\n    %s\n" (show_witness w)
  | None -> ());
  match ivl.Cm_check.upper with
  | Some w -> Printf.printf "  H2 (upper witness):\n    %s\n" (show_witness w)
  | None -> ()

(* ---- Figure 2: the IVL batched counter ------------------------------- *)

module Counter_check = Ivl.Check.Make (Spec.Counter_spec)
module Counter_lin = Ivl.Lincheck.Make (Spec.Counter_spec)
module Counter_bounds = Ivl.Bounded.Make (Spec.Counter_spec)

let figure2 () =
  print_endline "\n=== Figure 2: the read's IVL envelope ===\n";
  let u1 = { Hist.Op.id = 1; proc = 0; obj = 0; kind = Hist.Op.Update 5; ret = None } in
  let u2 = { Hist.Op.id = 2; proc = 1; obj = 0; kind = Hist.Op.Update 5; ret = None } in
  let mk_read ret =
    { Hist.Op.id = 3; proc = 2; obj = 0; kind = Hist.Op.Query 0; ret = Some ret }
  in
  Printf.printf "p1 and p2 each add 5 concurrently with p3's read:\n\n";
  Printf.printf "  %-6s %-14s %-6s\n" "read" "linearizable?" "IVL?";
  List.iter
    (fun v ->
      let q = mk_read v in
      let h =
        Hist.History.of_events
          [
            Hist.History.inv q;
            Hist.History.inv u1;
            Hist.History.inv u2;
            Hist.History.rsp u1;
            Hist.History.rsp u2;
            Hist.History.rsp q;
          ]
      in
      Printf.printf "  %-6d %-14b %-6b\n" v
        (Counter_lin.is_linearizable h)
        (Counter_check.is_ivl h))
    [ 0; 3; 5; 6; 7; 10; 11 ];
  let h6 =
    Hist.History.of_events
      [
        Hist.History.inv (mk_read 6);
        Hist.History.inv u1;
        Hist.History.inv u2;
        Hist.History.rsp u1;
        Hist.History.rsp u2;
        Hist.History.rsp (mk_read 6);
      ]
  in
  List.iter
    (fun (b : Counter_bounds.bound) ->
      Printf.printf "\nDefinition 5 interval for the read: [v_min, v_max] = [%d, %d]\n"
        b.Counter_bounds.v_min b.Counter_bounds.v_max)
    (Counter_bounds.query_bounds h6)

let () =
  example9 ();
  figure2 ()
