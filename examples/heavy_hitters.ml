(* Heavy hitters over a simulated packet stream — the workload the paper's
   introduction motivates ("a sketch might estimate the number of packets
   originating from any IP address, without storing a record for every
   packet").

   Four ingestion domains feed a concurrent CountMin sketch (PCM) with a
   Zipf-distributed stream of "source addresses" while a monitoring domain
   periodically scans for addresses above a traffic threshold. Because PCM
   is IVL, the monitor's estimates are bounded by the sketch's sequential
   error analysis (Corollary 8) — no locks, no snapshots.

   A Space-Saving sketch runs next to it as the candidate-set provider, the
   standard trick to avoid scanning the whole universe.

   Run with: dune exec examples/heavy_hitters.exe *)

let universe = 50_000
let stream_length = 400_000
let threshold = 0.005 (* report addresses above 0.5% of traffic *)

let () =
  Printf.printf "=== concurrent heavy hitters (universe %d, stream %d) ===\n\n"
    universe stream_length;

  let pcm = Conc.Pcm.create_for_error ~seed:1L ~alpha:0.001 ~delta:0.01 in
  let candidates = Sketches.Space_saving.create ~capacity:400 in
  let candidate_lock = Mutex.create () in

  let stream =
    Workload.Stream.generate ~seed:2L (Workload.Stream.Zipf (universe, 1.3))
      ~length:stream_length
  in
  let chunks = Workload.Stream.chunks stream ~pieces:4 in

  let reports = ref [] in
  let _ =
    Conc.Runner.parallel ~domains:5 (fun i ->
        if i < 4 then
          Array.iter
            (fun addr ->
              Conc.Pcm.update pcm addr;
              (* The candidate list tolerates coarse locking: it is consulted
                 rarely and updated cheaply. *)
              Mutex.lock candidate_lock;
              Sketches.Space_saving.update candidates addr;
              Mutex.unlock candidate_lock)
            chunks.(i)
        else begin
          (* The monitor: scan candidates against the sketch mid-ingest. *)
          for round = 1 to 3 do
            Mutex.lock candidate_lock;
            let cands = Sketches.Space_saving.top candidates in
            Mutex.unlock candidate_lock;
            let n = max 1 (Conc.Pcm.updates pcm) in
            let cut = int_of_float (threshold *. float_of_int n) in
            let hot =
              List.filter (fun (addr, _) -> Conc.Pcm.query pcm addr >= cut) cands
            in
            reports := (round, n, List.length hot) :: !reports
          done
        end)
  in

  List.iter
    (fun (round, n, hot) ->
      Printf.printf "mid-ingest report %d: %d addresses above %.1f%% after %d packets\n"
        round hot (100.0 *. threshold) n)
    (List.rev !reports);

  (* Final report vs ground truth. *)
  let exact = Sketches.Exact.create () in
  Array.iter (Sketches.Exact.update exact) stream;
  let true_heavy = Sketches.Exact.heavy_hitters exact ~threshold in
  let n = Sketches.Exact.total exact in
  let cut = int_of_float (threshold *. float_of_int n) in
  let final_hot =
    Sketches.Space_saving.top candidates
    |> List.filter (fun (addr, _) -> Conc.Pcm.query pcm addr >= cut)
    |> List.map fst
  in
  Printf.printf "\nfinal: %d true heavy hitters, %d reported\n" (List.length true_heavy)
    (List.length final_hot);
  let missed =
    List.filter (fun (addr, _) -> not (List.mem addr final_hot)) true_heavy
  in
  Printf.printf "missed: %d (CountMin never under-estimates, so misses can only\n"
    (List.length missed);
  print_endline "come from the candidate set, not the sketch)";
  print_endline "\ntop 10 by estimated traffic:";
  Sketches.Space_saving.top candidates
  |> List.filteri (fun i _ -> i < 10)
  |> List.iter (fun (addr, _) ->
         Printf.printf "  addr %-6d est %-6d true %-6d\n" addr (Conc.Pcm.query pcm addr)
           (Sketches.Exact.frequency exact addr))
