(* The paper's Section 1.2 scenario, executable:

   "Consider a system where processes count events, and a monitoring process
   detects when the number of events passes a threshold. The monitor
   constantly reads a shared counter, which other processes increment in
   batches."

   Workers add events in batches to the IVL batched counter (Algorithm 2 —
   O(1) per batch); the monitor spins on read (O(n)) and fires when the
   count passes the threshold. IVL is exactly the guarantee that makes this
   sound: the value the monitor sees is between the counter's value at the
   read's start and end, so (a) it never fires early by more than in-flight
   batches, and (b) once the true count passes the threshold, the next
   complete read must see it.

   Run with: dune exec examples/threshold_monitor.exe *)

let workers = 4
let batch = 10
let batches_per_worker = 25_000
let threshold = 500_000 (* half the final total *)

let () =
  Printf.printf "=== threshold monitor: %d workers x %d batches of %d, threshold %d ===\n\n"
    workers batches_per_worker batch threshold;

  let counter = Conc.Ivl_counter.create ~procs:workers in
  let fired_at = Atomic.make (-1) in
  let monitor_reads = Atomic.make 0 in

  let _ =
    Conc.Runner.parallel ~domains:(workers + 1) (fun i ->
        if i < workers then
          for _ = 1 to batches_per_worker do
            Conc.Ivl_counter.update counter ~proc:i batch
          done
        else begin
          (* The monitor. *)
          let rec watch () =
            let v = Conc.Ivl_counter.read counter in
            ignore (Atomic.fetch_and_add monitor_reads 1);
            if v >= threshold then Atomic.set fired_at v
            else if Atomic.get fired_at < 0 then watch ()
          in
          watch ()
        end)
  in

  let final = Conc.Ivl_counter.read counter in
  let fire = Atomic.get fired_at in
  Printf.printf "monitor fired at observed value %d (threshold %d)\n" fire threshold;
  Printf.printf "reads performed before firing: %d\n" (Atomic.get monitor_reads);
  Printf.printf "final counter value: %d (expected %d)\n" final
    (workers * batches_per_worker * batch);

  (* The IVL guarantee, checked: the observed trigger is at least the
     threshold and no more than the final count (all overshoot comes from
     batches applied during the read's interval). *)
  assert (fire >= threshold);
  assert (fire <= final);
  let overshoot = fire - threshold in
  Printf.printf "overshoot: %d events (at most the batches in flight during one read)\n"
    overshoot;
  print_endline "\nWith a linearizable counter this monitor would need Ω(n)-step";
  print_endline "updates (Theorem 14); with the IVL counter every batch is O(1)";
  print_endline "and the monitor's semantics are unchanged."
