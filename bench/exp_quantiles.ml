(* E11: concurrent quantiles — the paper's future-work direction, measured.
   The striped sketch (single-writer stripes + batched publication + merge
   on query) against the sequential KLL sketch: rank accuracy on the same
   stream, and ingestion throughput against a global-lock KLL baseline. *)

let stream_length = 60_000
let universe = 50_000

let rank_error () =
  let stream =
    Workload.Stream.generate ~seed:21L (Workload.Stream.Uniform universe)
      ~length:stream_length
  in
  let exact = Sketches.Exact.create () in
  Array.iter (Sketches.Exact.update exact) stream;
  let probes = [ universe / 10; universe / 4; universe / 2; 3 * universe / 4 ] in
  let mean_err ranks =
    let total =
      List.fold_left
        (fun acc x ->
          acc + abs (ranks x - Sketches.Exact.rank exact x))
        0 probes
    in
    float_of_int total /. float_of_int (List.length probes)
      /. float_of_int stream_length
  in
  (* Sequential control. *)
  let seq = Sketches.Quantiles.create ~k:256 ~seed:22L () in
  Array.iter (Sketches.Quantiles.update seq) stream;
  let seq_err = mean_err (Sketches.Quantiles.rank seq) in
  (* Concurrent striped. *)
  let domains = 4 in
  let striped =
    Conc.Striped_quantiles.create ~k:256 ~publish_every:64 ~seed:23L ~domains ()
  in
  let chunks = Workload.Stream.chunks stream ~pieces:domains in
  let _ =
    Conc.Runner.parallel ~domains (fun i ->
        Array.iter (fun x -> Conc.Striped_quantiles.update striped ~domain:i x) chunks.(i))
  in
  Conc.Striped_quantiles.flush_all striped;
  let conc_err = mean_err (Conc.Striped_quantiles.rank striped) in
  (seq_err, conc_err)

(* A strawman linearizable baseline: one KLL behind a mutex. *)
let locked_throughput ~writers stream =
  let lock = Mutex.create () in
  let q = Sketches.Quantiles.create ~k:256 ~seed:24L () in
  let chunks = Workload.Stream.chunks stream ~pieces:writers in
  let _, dt =
    Conc.Runner.parallel_timed ~domains:writers (fun i b ->
        Conc.Barrier.await b;
        Array.iter
          (fun x ->
            Mutex.lock lock;
            Sketches.Quantiles.update q x;
            Mutex.unlock lock)
          chunks.(i))
  in
  dt

let striped_throughput ~writers stream =
  let q =
    Conc.Striped_quantiles.create ~k:256 ~publish_every:64 ~seed:25L ~domains:writers ()
  in
  let chunks = Workload.Stream.chunks stream ~pieces:writers in
  let _, dt =
    Conc.Runner.parallel_timed ~domains:writers (fun i b ->
        Conc.Barrier.await b;
        Array.iter (fun x -> Conc.Striped_quantiles.update q ~domain:i x) chunks.(i))
  in
  dt

let hll_accuracy () =
  let true_distinct = 60_000 in
  (* Sequential control. *)
  let seq = Sketches.Hyperloglog.create ~p:12 ~seed:27L () in
  for x = 1 to true_distinct do
    Sketches.Hyperloglog.update seq x
  done;
  let seq_err =
    abs_float (Sketches.Hyperloglog.estimate seq -. float_of_int true_distinct)
    /. float_of_int true_distinct
  in
  (* Concurrent, 4 domains over overlapping slices. *)
  let conc = Conc.Hll_conc.create ~p:12 ~seed:28L () in
  let _ =
    Conc.Runner.parallel ~domains:4 (fun i ->
        for x = 1 to true_distinct do
          if (x + i) mod 2 = 0 then Conc.Hll_conc.update conc x
        done;
        (* Second pass covers the other half so all domains race on shared
           registers while the union is complete. *)
        for x = 1 to true_distinct do
          if (x + i) mod 2 = 1 then Conc.Hll_conc.update conc x
        done)
  in
  let conc_err =
    abs_float (Conc.Hll_conc.estimate conc -. float_of_int true_distinct)
    /. float_of_int true_distinct
  in
  (seq_err, conc_err)

let run () =
  Bench_util.section
    "E11: beyond counters and frequencies - quantiles and cardinality";
  let seq_err, conc_err = rank_error () in
  Bench_util.table
    ~header:[ "sketch"; "mean rank error / n" ]
    [
      [ "sequential KLL (k=256)"; Printf.sprintf "%.5f" seq_err ];
      [ "striped concurrent (4 domains)"; Printf.sprintf "%.5f" conc_err ];
    ];
  print_endline
    "shape check: the striped sketch's rank error matches the sequential";
  print_endline "sketch's (merge preserves the KLL guarantee).";

  Bench_util.subsection "cardinality: sequential vs concurrent HyperLogLog";
  let hseq, hconc = hll_accuracy () in
  Bench_util.table
    ~header:[ "sketch"; "relative error" ]
    [
      [ "sequential HLL (p=12)"; Printf.sprintf "%.4f" hseq ];
      [ "concurrent HLL (4 domains, atomic max regs)"; Printf.sprintf "%.4f" hconc ];
    ];

  Bench_util.subsection "top-k: striped Space-Saving recall";
  let topk_stream =
    Workload.Stream.generate ~seed:29L (Workload.Stream.Zipf (5_000, 1.4))
      ~length:stream_length
  in
  let topk =
    Conc.Striped_topk.create ~capacity:128 ~publish_every:64 ~seed:30L ~domains:4 ()
  in
  let topk_chunks = Workload.Stream.chunks topk_stream ~pieces:4 in
  let _ =
    Conc.Runner.parallel ~domains:4 (fun i ->
        Array.iter (fun a -> Conc.Striped_topk.update topk ~domain:i a) topk_chunks.(i))
  in
  Conc.Striped_topk.flush_all topk;
  let exact_topk = Sketches.Exact.create () in
  Array.iter (Sketches.Exact.update exact_topk) topk_stream;
  let truth = Sketches.Exact.heavy_hitters exact_topk ~threshold:0.005 in
  let reported = List.map fst (Conc.Striped_topk.top topk ~k:(List.length truth) ()) in
  let recall =
    List.length (List.filter (fun (e, _) -> List.mem e reported) truth)
  in
  Bench_util.table
    ~header:[ "metric"; "value" ]
    [
      [ "true heavy hitters (>=0.5%)"; string_of_int (List.length truth) ];
      [ "recalled in concurrent top-k"; string_of_int recall ];
      [ "merged over-estimate bound"; string_of_int (Conc.Striped_topk.guaranteed_error topk) ];
    ];

  Bench_util.subsection "ingestion throughput (Mops/s)";
  let stream =
    Workload.Stream.generate ~seed:26L (Workload.Stream.Uniform universe)
      ~length:stream_length
  in
  let rows =
    List.map
      (fun w ->
        let t_striped = striped_throughput ~writers:w stream in
        let t_locked = locked_throughput ~writers:w stream in
        [
          string_of_int w;
          Bench_util.fmt_rate stream_length t_striped;
          Bench_util.fmt_rate stream_length t_locked;
          Printf.sprintf "%.2fx" (t_locked /. t_striped);
        ])
      [ 1; 2; 4 ]
  in
  Bench_util.table ~header:[ "writers"; "striped"; "locked KLL"; "speedup" ] rows
