(* E9: what durability costs, and what recovery costs.

   Two dials from docs/RECOVERY.md measured on this host:

   - WAL overhead: pipeline ingestion throughput with the write-ahead log
     off, then on under each fsync policy, then with checkpoints layered on
     top. The append happens in the merger's domain outside the query mutex,
     so the expected cost is one buffered write per merge — until the fsync
     policy starts charging a disk flush.

   - Recovery time vs log length: recover-from-scratch wall time as the
     number of WAL records past the checkpoint grows. Replay is linear in
     suffix length; checkpoint cadence is exactly the knob that bounds it. *)

let total_updates = 100_000
let reps = 3
let shards = 4
let feeders = 4
let batch = 512

let seeded_stream () =
  Workload.Stream.generate ~seed:11L
    (Workload.Stream.Zipf (50_000, 1.1))
    ~length:total_updates

module M = Pipeline.Targets.Counter
module P = Pipeline.Engine.Make (M)
module R = Durable.Recovery.Make (M)

let tmp_counter = ref 0

let with_tmp_dir f =
  incr tmp_counter;
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "ivl-bench-durable-%d-%d" (Unix.getpid ()) !tmp_counter)
  in
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter
          (fun f -> Sys.remove (Filename.concat dir f))
          (Sys.readdir dir);
        Unix.rmdir dir
      end)
    (fun () -> f dir)

(* One full ingestion run; [wal] configures durability, [checkpoint_every]
   only matters when a wal is given. Returns elapsed seconds. *)
let run_once ?wal ?(checkpoint_every = 0) stream =
  let writer =
    Option.map (fun (dir, fsync) -> Durable.Wal.create ~dir ~fsync ()) wal
  in
  let on_merge =
    Option.map
      (fun w ~ctx:_ ~epoch ~weight ~blob ->
        Durable.Wal.append w ~epoch ~weight ~blob)
      writer
  in
  let on_checkpoint =
    match (wal, checkpoint_every) with
    | Some (dir, _), n when n > 0 ->
        Some
          (fun ~epoch ~published ~blob ->
            Durable.Checkpoint.write ~dir ~epoch ~published ~blob ())
    | _ -> None
  in
  let p =
    P.create ~queue_capacity:4096 ~batch ?on_merge
      ~checkpoint_every:(if wal = None then 0 else checkpoint_every)
      ?on_checkpoint ~shards ()
  in
  let chunks = Workload.Stream.chunks stream ~pieces:feeders in
  let (), dt =
    Conc.Runner.timed (fun () ->
        ignore
          (Conc.Runner.parallel ~domains:feeders (fun i ->
               Array.iter (fun x -> ignore (P.ingest p x)) chunks.(i)));
        P.drain p)
  in
  Option.iter Durable.Wal.close writer;
  dt

let rate dt = float_of_int total_updates /. dt /. 1e6

let measure_config ~name ~params f =
  let rates = List.init reps (fun _ -> rate (f ())) in
  Bench_util.record_samples ~exp:"durable" ~name
    ~params:
      (params
      @ [
          ("feeders", Bench_util.json_int feeders);
          ("shards", Bench_util.json_int shards);
          ("total_updates", Bench_util.json_int total_updates);
        ])
    rates;
  List.fold_left ( +. ) 0.0 rates /. float_of_int reps

(* Build a WAL of [n] single-update counter records and time recovery. *)
let recovery_time ~records dir =
  let w = Durable.Wal.create ~dir ~fsync:Durable.Wal.Never () in
  let delta =
    let d = M.create () in
    M.update d 1;
    M.encode d
  in
  for epoch = 1 to records do
    Durable.Wal.append w ~epoch ~weight:1 ~blob:delta
  done;
  Durable.Wal.close w;
  let t0 = Unix.gettimeofday () in
  (match R.recover ~dir () with
  | Ok (_, r) -> assert (r.R.replayed = records)
  | Error e -> failwith e);
  Unix.gettimeofday () -. t0

let run () =
  Bench_util.section "E9: durability cost (WAL + checkpoints) and recovery time";
  Printf.printf
    "(counter pipeline, %d shards + 1 merger, batch %d, %d feeders; mean of %d \
     reps)\n"
    shards batch feeders reps;
  let stream = seeded_stream () in
  let configs =
    [
      ("wal off", "off", None, 0);
      ("wal fsync=never", "never", Some Durable.Wal.Never, 0);
      ("wal fsync=every-64", "every-64", Some (Durable.Wal.Every_n 64), 0);
      ("wal fsync=always", "always", Some Durable.Wal.Always, 0);
      ( "wal every-64 + ckpt/32",
        "every-64+ckpt",
        Some (Durable.Wal.Every_n 64),
        32 );
    ]
  in
  let rows =
    List.map
      (fun (label, tag, fsync, ckpt) ->
        let mean =
          measure_config ~name:("ingest-" ^ tag)
            ~params:
              [
                ( "fsync",
                  Bench_util.json_string
                    (match fsync with
                    | None -> "off"
                    | Some p -> Durable.Wal.policy_to_string p) );
                ("checkpoint_every", Bench_util.json_int ckpt);
              ]
            (fun () ->
              match fsync with
              | None -> run_once stream
              | Some policy ->
                  with_tmp_dir (fun dir ->
                      run_once ~wal:(dir, policy) ~checkpoint_every:ckpt
                        stream))
        in
        [ label; Bench_util.fmt_float ~digits:2 mean ])
      configs
  in
  Bench_util.table ~header:[ "config"; "Mops/s" ] rows;

  Bench_util.subsection "recovery wall time vs WAL suffix length";
  let rows =
    List.map
      (fun records ->
        let secs =
          List.init reps (fun _ -> with_tmp_dir (recovery_time ~records))
        in
        Bench_util.record_samples ~exp:"durable" ~name:"recovery-time"
          ~params:[ ("records", Bench_util.json_int records) ]
          ~unit_:"s" secs;
        let mean = List.fold_left ( +. ) 0.0 secs /. float_of_int reps in
        [
          string_of_int records;
          Bench_util.fmt_float ~digits:4 mean;
          Bench_util.fmt_float ~digits:2
            (float_of_int records /. mean /. 1e6);
        ])
      [ 1_000; 10_000; 50_000 ]
  in
  Bench_util.table ~header:[ "wal records"; "recover s"; "Mrec/s" ] rows
