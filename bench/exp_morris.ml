(* E10: the transfer theorem on a second sketch — the Morris counter.
   Sequential Morris vs the CAS-based concurrent Morris on the same event
   counts: mean relative error and estimate spread. The concurrent variant's
   reads are IVL (the exponent is monotone), so Theorem 6 predicts its error
   stays comparable to the sequential sketch's. *)

let trials = 40

let measure ~base ~n ~concurrent =
  let errs = Stats.Moments.create () in
  for t = 1 to trials do
    let estimate =
      if concurrent then begin
        let m =
          Conc.Morris_conc.create ~base ~seed:(Int64.of_int (7000 + t)) ~domains:4 ()
        in
        let _ =
          Conc.Runner.parallel ~domains:4 (fun i ->
              for _ = 1 to n / 4 do
                Conc.Morris_conc.update m ~domain:i
              done)
        in
        Conc.Morris_conc.estimate m
      end
      else begin
        let m = Sketches.Morris.create ~base ~seed:(Int64.of_int (9000 + t)) () in
        for _ = 1 to n do
          Sketches.Morris.update m
        done;
        Sketches.Morris.estimate m
      end
    in
    Stats.Moments.add errs (abs_float (estimate -. float_of_int n) /. float_of_int n)
  done;
  errs

let run () =
  Bench_util.section "E10: Morris counter - sequential vs concurrent accuracy";
  let rows =
    List.concat_map
      (fun (base, n) ->
        let seq = measure ~base ~n ~concurrent:false in
        let conc = measure ~base ~n ~concurrent:true in
        [
          [
            Printf.sprintf "base=%.2f n=%d" base n;
            Printf.sprintf "%.3f" (Stats.Moments.mean seq);
            Printf.sprintf "%.3f" (Stats.Moments.stddev seq);
            Printf.sprintf "%.3f" (Stats.Moments.mean conc);
            Printf.sprintf "%.3f" (Stats.Moments.stddev conc);
          ];
        ])
      [ (1.1, 20_000); (1.2, 20_000); (2.0, 20_000) ]
  in
  Bench_util.table
    ~header:
      [ "configuration"; "seq mean rel err"; "seq sd"; "conc mean rel err"; "conc sd" ]
    rows;
  print_endline
    "shape check: concurrent error within a small factor of sequential at each";
  print_endline
    "base; smaller bases tighten both (the sequential analysis carries over)."
