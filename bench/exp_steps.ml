(* E1 + E2 + E3: step-complexity tables in the SWMR register model
   (Theorems 11 and 14, Figure 2), measured exactly on the simulator. *)

module M = Simulation.Machine
module S = Simulation.Sched
module A = Simulation.Algos

let avg xs = float_of_int (List.fold_left ( + ) 0 xs) /. float_of_int (List.length xs)

let max_l xs = List.fold_left max min_int xs

(* One process per slot performs updates; one extra reader. Uses a random
   schedule so updates contend with the read. *)
let ivl_counter_steps n =
  let scripts =
    Array.init (n + 1) (fun p ->
        if p < n then
          List.init 3 (fun k -> A.Ivl_counter.update_op ~proc:p ~amount:(k + 1) ())
        else [ A.Ivl_counter.read_op ~n:(n + 1) (); A.Ivl_counter.read_op ~n:(n + 1) () ])
  in
  let r =
    M.run
      ~registers:(A.Ivl_counter.registers ~n:(n + 1))
      ~scripts
      ~sched:(S.Random (Int64.of_int (1000 + n)))
      ()
  in
  let by = M.steps_by_label r in
  (List.assoc "update" by, List.assoc "read" by)

let snapshot_counter_steps n =
  let scripts =
    Array.init (n + 1) (fun p ->
        if p < n then
          List.init 2 (fun k ->
              Simulation.Snapshot.update_op ~n:(n + 1) ~proc:p ~amount:(k + 1) ())
        else [ Simulation.Snapshot.read_op ~n:(n + 1) () ])
  in
  let r =
    M.run
      ~registers:(Simulation.Snapshot.registers ~n:(n + 1))
      ~scripts
      ~sched:(S.Random (Int64.of_int (2000 + n)))
      ()
  in
  let by = M.steps_by_label r in
  (List.assoc "update" by, List.assoc "read" by)

let run () =
  Bench_util.section
    "E1/E2: step complexity of batched counters from SWMR registers";
  print_endline
    "(simulator; a step = one shared-register access; random contended schedules)";

  Bench_util.subsection
    "E1 - IVL batched counter (Algorithm 2): update O(1), read O(n)";
  let rows_ivl =
    List.map
      (fun n ->
        let upd, rd = ivl_counter_steps n in
        [
          string_of_int n;
          Bench_util.fmt_float (avg upd);
          string_of_int (max_l upd);
          Bench_util.fmt_float (avg rd);
          string_of_int (max_l rd);
        ])
      [ 2; 4; 8; 16; 32; 64 ]
  in
  Bench_util.table
    ~header:[ "n procs"; "update avg"; "update max"; "read avg"; "read max" ]
    rows_ivl;
  print_endline "shape check: update flat in n; read grows linearly (Theorem 11).";

  Bench_util.subsection
    "E2 - linearizable snapshot counter (Afek et al.): update Omega(n)";
  let rows_snap =
    List.map
      (fun n ->
        let upd, rd = snapshot_counter_steps n in
        [
          string_of_int n;
          Bench_util.fmt_float (avg upd);
          string_of_int (max_l upd);
          Bench_util.fmt_float (avg rd);
          string_of_int (max_l rd);
        ])
      [ 2; 4; 8; 16; 32 ]
  in
  Bench_util.table
    ~header:[ "n procs"; "update avg"; "update max"; "read avg"; "read max" ]
    rows_snap;
  print_endline
    "shape check: update grows at least linearly in n (Theorem 14's lower bound;";
  print_endline "this implementation pays O(n^2) worst-case via embedded scans).";

  Bench_util.subsection
    "the three escapes from Theorem 14 (n = 8, uncontended costs in steps)";
  let n = 8 in
  (* IVL counter. *)
  let ivl_u, ivl_r = ivl_counter_steps n in
  let ivl_u = avg ivl_u in
  (* Snapshot (wait-free linearizable). *)
  let snap_u, snap_r = snapshot_counter_steps n in
  let snap_u = avg snap_u in
  (* Double-collect (lock-free linearizable): measure uncontended. *)
  let dc =
    let scripts =
      Array.init (n + 1) (fun p ->
          if p < n then [ Simulation.Double_collect.update_op ~proc:p ~amount:1 () ]
          else [ Simulation.Double_collect.read_op ~n:(n + 1) () ])
    in
    M.run
      ~registers:(Simulation.Double_collect.registers ~n:(n + 1))
      ~scripts
      ~sched:(S.Explicit (List.concat (List.init n (fun p -> [ p; p ]))))
      ()
  in
  let dc_by = M.steps_by_label dc in
  let dc_u = avg (List.assoc "update" dc_by) and dc_r = avg (List.assoc "read" dc_by) in
  (* FAA. *)
  let faa =
    let scripts =
      Array.init 2 (fun p ->
          if p = 0 then [ A.Faa_counter.update_op ~amount:1 () ]
          else [ A.Faa_counter.read_op () ])
    in
    M.run ~registers:A.Faa_counter.registers ~scripts ~sched:S.Round_robin ()
  in
  let faa_by = M.steps_by_label faa in
  let faa_u = avg (List.assoc "update" faa_by) and faa_r = avg (List.assoc "read" faa_by) in
  Bench_util.table
    ~header:[ "counter"; "criterion"; "progress"; "primitives"; "update"; "read" ]
    [
      [ "IVL (Algorithm 2)"; "IVL"; "wait-free"; "SWMR";
        Bench_util.fmt_float ivl_u; Bench_util.fmt_float (avg ivl_r) ];
      [ "snapshot (Afek et al.)"; "linearizable"; "wait-free"; "SWMR";
        Bench_util.fmt_float snap_u; Bench_util.fmt_float (avg snap_r) ];
      [ "double-collect"; "linearizable"; "lock-free only"; "SWMR";
        Bench_util.fmt_float dc_u; Bench_util.fmt_float dc_r ];
      [ "fetch-and-add"; "linearizable"; "wait-free"; "FAA (stronger)";
        Bench_util.fmt_float faa_u; Bench_util.fmt_float faa_r ];
    ];
  print_endline
    "Theorem 14 forces every corner to pay somewhere: the only O(1)-update,";
  print_endline
    "wait-free, SWMR-register implementation is the one that weakened the";
  print_endline "correctness criterion to IVL.";

  (* E3: Figure 2 exact replay. *)
  Bench_util.subsection "E3 - Figure 2 replay (explicit schedule)";
  let n = 3 in
  let scripts =
    [|
      [ A.Ivl_counter.update_op ~proc:0 ~amount:5 () ];
      [ A.Ivl_counter.update_op ~proc:1 ~amount:2 () ];
      [ A.Ivl_counter.read_op ~n () ];
    |]
  in
  let r =
    M.run ~registers:(A.Ivl_counter.registers ~n) ~scripts
      ~sched:(S.Explicit [ 2; 0; 0; 1; 1; 2; 2 ])
      ()
  in
  let read =
    List.find (fun o -> Hist.Op.is_query o) (Hist.History.completed r.M.history)
  in
  let module Counter_check = Ivl.Check.Make (Spec.Counter_spec) in
  let module Counter_lin = Ivl.Lincheck.Make (Spec.Counter_spec) in
  Printf.printf
    "update(5) completes, then update(2); overlapping read returned %d\n"
    (Option.get read.Hist.Op.ret);
  Printf.printf "linearizable: %b   IVL: %b   (paper: intermediate values are IVL-only)\n"
    (Counter_lin.is_linearizable r.M.history)
    (Counter_check.is_ivl r.M.history)
