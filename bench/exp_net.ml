(* E16/E17: what the served tier costs over loopback, and whether it
   survives a hostile network.

   The pipeline's ingestion numbers (E10/E13) are in-process; this
   experiment puts the same engine behind the lib/net server and measures
   the system a deployment actually sees:

   - ingest throughput (Mops/s) through the batching client as the sender
     connection count grows — the framing + ack round-trip tax on top of
     the engine, and whether extra connections buy it back;
   - query QPS as concurrent query connections grow — each query is a
     full frame round-trip answered from the replication mirror, so this
     prices the read path without sketch access;
   - a zero-tolerance envelope row: after every timed run the server is
     drained and the published weight must equal the client's acked count
     exactly (conservation over the wire). Unit "violations" makes any
     nonzero fatal in `bench compare` — loopback has no excuse.

   E17 is the robustness counterpart: a small served chaos soak through
   Net.Chaos_proxy (latency, bit flips, mid-frame resets, refused dials,
   one full partition) with a server kill + WAL restart mid-trace. The
   four soak verdicts land as zero-tolerance rows; resync and duplicate
   counts ride along as informational. *)

let ingest_ops = 200_000
let query_rounds = 2_000
let conn_counts = [ 1; 2; 4 ]

module MC = Pipeline.Targets.Counter
module Srv = Net.Server.Make (MC)

let start_server () =
  Srv.create ~read_timeout:10.0
    ~eval:(fun _ _ -> None)
    ~make_engine:(fun ~on_merge ->
      Srv.P.create ~shards:4 ~batch:512 ~on_merge ())
    ()

(* One producer, [conns] sender connections: the client's shared buffer
   decouples them, so this measures delivery parallelism, not producer
   parallelism. *)
let ingest_run conns =
  let srv = start_server () in
  let cli =
    Net.Client.create ~conns ~batch:256 ~flush_age:0.05 ~host:"127.0.0.1"
      ~port:(Srv.port srv) ()
  in
  let t0 = Unix.gettimeofday () in
  for i = 0 to ingest_ops - 1 do
    ignore (Net.Client.push cli (i land 8191))
  done;
  Net.Client.flush cli;
  let dt = Unix.gettimeofday () -. t0 in
  let cs = Net.Client.stats cli in
  Net.Client.close cli;
  ignore (Srv.stop srv);
  let published = (Srv.P.stats (Srv.engine srv)).Srv.P.published in
  let violations =
    (if published <> cs.Net.Client.acked then 1 else 0)
    + if cs.Net.Client.errors > 0 then 1 else 0
  in
  (float_of_int ingest_ops /. dt /. 1e6, violations)

(* [conns] independent query connections hammering Total in lockstep. *)
let query_run conns =
  let srv = start_server () in
  (* Some state so the mirror answer is non-trivial. *)
  let c = Net.Conn.connect ~host:"127.0.0.1" ~port:(Srv.port srv) in
  Net.Conn.set_read_timeout c 5.0;
  ignore
    (Net.Conn.send c
       (Net.Frame.encode_request
          (Net.Frame.Batch
             {
               session = 0L;
               seq = 0;
               ctx = Obs.Span.zero;
               keys = Array.init 4096 (fun i -> i);
             })));
  ignore (Net.Conn.recv c);
  let t0 = Unix.gettimeofday () in
  let workers =
    List.init conns (fun _ ->
        Domain.spawn (fun () ->
            let q = Net.Conn.connect ~host:"127.0.0.1" ~port:(Srv.port srv) in
            Net.Conn.set_read_timeout q 5.0;
            let req = Net.Frame.encode_request (Net.Frame.Query Net.Frame.Total) in
            let ok = ref 0 in
            for _ = 1 to query_rounds do
              if Net.Conn.send q req then
                match Net.Conn.recv q with Ok _ -> incr ok | Error _ -> ()
            done;
            Net.Conn.close q;
            !ok))
  in
  let answered = List.fold_left (fun a d -> a + Domain.join d) 0 workers in
  let dt = Unix.gettimeofday () -. t0 in
  Net.Conn.close c;
  ignore (Srv.stop srv);
  let violations = if answered < conns * query_rounds then 1 else 0 in
  (float_of_int answered /. dt, violations)

let rec run () =
  Bench_util.section
    "E16: served tier over loopback (ingest Mops/s, query QPS vs connections)";
  let violations = ref 0 in
  let ingest_rows =
    List.map
      (fun conns ->
        let mops, viol = ingest_run conns in
        violations := !violations + viol;
        Bench_util.record ~exp:"net" ~name:"e16-ingest"
          ~params:[ ("conns", string_of_int conns) ]
          mops;
        [ string_of_int conns; Bench_util.fmt_float ~digits:2 mops ])
      conn_counts
  in
  Bench_util.subsection "batched ingest through the client";
  Bench_util.table ~header:[ "conns"; "Mops/s" ] ingest_rows;
  let query_rows =
    List.map
      (fun conns ->
        let qps, viol = query_run conns in
        violations := !violations + viol;
        Bench_util.record ~exp:"net" ~name:"e16-query" ~unit_:"ops/s"
          ~params:[ ("conns", string_of_int conns) ]
          qps;
        [ string_of_int conns; Bench_util.fmt_float ~digits:0 qps ])
      conn_counts
  in
  Bench_util.subsection "Total queries, one round-trip each";
  Bench_util.table ~header:[ "conns"; "QPS" ] query_rows;
  Bench_util.record ~exp:"net" ~name:"e16-envelope-violations"
    ~unit_:"violations" (float_of_int !violations);
  Printf.printf "\nconservation violations across all runs: %d (gate: 0)\n"
    !violations;
  chaos_run ()

(* --- E17: served chaos soak through the fault-injecting proxy --------- *)

and chaos_run () =
  Bench_util.section
    "E17: served chaos soak (kill + WAL restart + partition behind the proxy)";
  let module NS = Net.Soak.Make (MC) in
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "ivl-bench-chaos-%d" (Unix.getpid ()))
  in
  if Sys.file_exists dir then
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir)
  else Unix.mkdir dir 0o755;
  let spec =
    let s =
      Workload.Trace.default_spec ~seed:0xE17L ~ops:60_000 ~universe:4096 ()
    in
    {
      s with
      Workload.Trace.phases =
        List.map
          (fun (p : Workload.Trace.phase) ->
            { p with Workload.Trace.rate = Workload.Trace.Unlimited })
          s.Workload.Trace.phases;
    }
  in
  let ops = Workload.Trace.materialize spec in
  let base = Net.Soak.default_config ~dir in
  let cfg =
    {
      base with
      Net.Soak.restarts = 1;
      partitions = 1;
      down_time = 0.2;
      partition_time = 0.2;
      seed = 0xE17C4A05L;
    }
  in
  let v = NS.run cfg ~spec ~ops () in
  print_string (NS.verdict_to_string v);
  let flag b = if b then 0.0 else 1.0 in
  let viol name value =
    Bench_util.record ~exp:"net" ~name ~unit_:"violations" value
  in
  viol "e17-chaos-conservation" (flag v.Net.Soak.conservation);
  viol "e17-chaos-ack" (flag v.Net.Soak.ack_envelope);
  viol "e17-chaos-replica" (flag v.Net.Soak.replica_envelope);
  viol "e17-chaos-convergence" (flag v.Net.Soak.convergence);
  viol "e17-chaos-exhausted" (float_of_int v.Net.Soak.exhausted);
  Bench_util.record ~exp:"net" ~name:"e17-chaos-resyncs" ~unit_:"count"
    (float_of_int v.Net.Soak.resyncs);
  Bench_util.record ~exp:"net" ~name:"e17-chaos-duplicates" ~unit_:"count"
    (float_of_int v.Net.Soak.duplicates_server);
  Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  Unix.rmdir dir
