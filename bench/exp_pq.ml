(* E13: relaxed priority queues — the paper's second future-work direction
   ("semi-quantitative" objects whose return values carry a priority).

   The MultiQueue's delete_min returns near-minimal priorities; we measure
   the rank-error distribution of returned elements against the exact heap
   (quantifying how "intermediate" the returned quantity is), and throughput
   against a single mutex-protected heap. *)

let rank_error_distribution ~c ~domains =
  let n = 20_000 in
  let mq = Pq.Multiqueue.create ~c ~seed:51L ~domains () in
  let g = Rng.Splitmix.create 52L in
  for _ = 1 to n do
    let p = Rng.Splitmix.next_int g 1_000_000 in
    Pq.Multiqueue.insert mq ~domain:0 ~priority:p p
  done;
  (* Pop everything; rank error of a pop = number of remaining elements with
     strictly smaller priority, tracked in an exact multiset. *)
  let module IntMap = Map.Make (Int) in
  let live = ref IntMap.empty in
  let bump m p d =
    IntMap.update p (function
      | None -> if d > 0 then Some d else None
      | Some c -> if c + d <= 0 then None else Some (c + d))
      m
  in
  (* Re-insert the same stream to know the multiset. *)
  let g2 = Rng.Splitmix.create 52L in
  for _ = 1 to n do
    live := bump !live (Rng.Splitmix.next_int g2 1_000_000) 1
  done;
  let errors = ref [] in
  let rec drain () =
    match Pq.Multiqueue.delete_min mq ~domain:0 with
    | None -> ()
    | Some (p, _) ->
        let smaller =
          IntMap.fold (fun q c acc -> if q < p then acc + c else acc) !live 0
        in
        errors := float_of_int smaller :: !errors;
        live := bump !live p (-1);
        drain ()
  in
  drain ();
  Array.of_list !errors

let locked_heap_throughput ~threads ~ops =
  let lock = Mutex.create () in
  let heap = Pq.Heap.create () in
  let per = ops / threads in
  let _, dt =
    Conc.Runner.parallel_timed ~domains:threads (fun i b ->
        Conc.Barrier.await b;
        let g = Rng.Splitmix.create (Int64.of_int (60 + i)) in
        for _ = 1 to per do
          Mutex.lock lock;
          if Rng.Splitmix.next_bool g || Pq.Heap.is_empty heap then
            Pq.Heap.insert heap ~priority:(Rng.Splitmix.next_int g 1_000_000) 0
          else ignore (Pq.Heap.pop heap);
          Mutex.unlock lock
        done)
  in
  dt

let multiqueue_throughput ~threads ~ops ~c =
  let mq = Pq.Multiqueue.create ~c ~seed:61L ~domains:threads () in
  let per = ops / threads in
  let _, dt =
    Conc.Runner.parallel_timed ~domains:threads (fun i b ->
        Conc.Barrier.await b;
        let g = Rng.Splitmix.create (Int64.of_int (70 + i)) in
        for _ = 1 to per do
          if Rng.Splitmix.next_bool g then
            Pq.Multiqueue.insert mq ~domain:i ~priority:(Rng.Splitmix.next_int g 1_000_000) 0
          else ignore (Pq.Multiqueue.delete_min mq ~domain:i)
        done)
  in
  dt

let run () =
  Bench_util.section
    "E13: relaxed priority queue (MultiQueue) - the semi-quantitative frontier";
  Bench_util.subsection "delete_min rank-error distribution (single consumer)";
  let rows =
    List.map
      (fun (c, domains) ->
        let errs = rank_error_distribution ~c ~domains in
        [
          Printf.sprintf "c=%d x %d domains (%d heaps)" c domains (c * domains);
          Printf.sprintf "%.1f" (Stats.Percentile.median errs);
          Printf.sprintf "%.1f" (Stats.Percentile.percentile errs 90.0);
          Printf.sprintf "%.1f" (Stats.Percentile.percentile errs 99.0);
          Printf.sprintf "%.0f" (Stats.Percentile.percentile errs 100.0);
        ])
      [ (2, 1); (2, 4); (4, 4); (8, 4) ]
  in
  Bench_util.table ~header:[ "configuration"; "median"; "p90"; "p99"; "max" ] rows;
  print_endline
    "shape check: rank error scales with the heap count (the relaxation";
  print_endline
    "knob), staying O(heaps) in expectation - the priority returned is an";
  print_endline "intermediate value, never a wild one.";

  Bench_util.subsection "mixed insert/delete throughput (Mops/s)";
  let ops = 400_000 in
  let rows =
    List.map
      (fun threads ->
        let t_mq = multiqueue_throughput ~threads ~ops ~c:4 in
        let t_locked = locked_heap_throughput ~threads ~ops in
        [
          string_of_int threads;
          Bench_util.fmt_rate ops t_mq;
          Bench_util.fmt_rate ops t_locked;
          Printf.sprintf "%.2fx" (t_locked /. t_mq);
        ])
      [ 1; 2; 4 ]
  in
  Bench_util.table
    ~header:[ "threads"; "multiqueue (c=4)"; "locked heap"; "speedup" ]
    rows;
  print_endline
    "note: on a single-core host the global lock is never contended, so the";
  print_endline
    "multiqueue's two probe locks + RNG per op cost more than they save; the";
  print_endline
    "relaxation pays off when threads on separate cores would serialize on";
  print_endline "one heap lock - the rank-error table is the host-independent result."
