(* E8: sharded-pipeline ingestion throughput against the shared-state
   concurrent sketches.

   The pipeline buys wait-free shard-local updates (each worker owns its
   delta) at the price of a queue hop per item and a wire encode/decode per
   batch; the shared-state designs (PCM's atomic cells, the striped KMV)
   pay per-update synchronization on shared cache lines instead. The table
   makes the regime visible on this host: where the queue hop is cheaper
   than contention, the pipeline wins; where it is not, it loses — either
   way the published state stays IVL (the CLI's `pipeline` subcommand
   checks the envelope on every run; here we only time). *)

let total_updates = 100_000
let reps = 3
let shards = 4

let seeded_stream () =
  Workload.Stream.generate ~seed:11L
    (Workload.Stream.Zipf (50_000, 1.1))
    ~length:total_updates

(* --- CountMin: pipeline vs PCM vs global lock --- *)

module Cm =
  Pipeline.Targets.Countmin
    (struct
      let seed = 5L
      let rows = 4
      let width = 1024
    end)

module Pcm_pipe = Pipeline.Engine.Make (Cm)

let pipeline_cm_time ?(queue = `Mutex) ~feeders stream =
  let p = Pcm_pipe.create ~queue ~queue_capacity:4096 ~batch:2048 ~shards () in
  let chunks = Workload.Stream.chunks stream ~pieces:feeders in
  let (), dt =
    Conc.Runner.timed (fun () ->
        ignore
          (Conc.Runner.parallel ~domains:feeders (fun i ->
               Array.iter (fun x -> ignore (Pcm_pipe.ingest p x)) chunks.(i)));
        Pcm_pipe.drain p)
  in
  dt

let pcm_time ~feeders stream =
  let family = Hashing.Family.seeded ~seed:5L ~rows:4 ~width:1024 in
  let pcm = Conc.Pcm.create ~family in
  let chunks = Workload.Stream.chunks stream ~pieces:feeders in
  let _, dt =
    Conc.Runner.parallel_timed ~domains:feeders (fun i b ->
        Conc.Barrier.await b;
        Array.iter (Conc.Pcm.update pcm) chunks.(i))
  in
  dt

let locked_cm_time ~feeders stream =
  let family = Hashing.Family.seeded ~seed:5L ~rows:4 ~width:1024 in
  let cm = Conc.Locked_countmin.create ~family in
  let chunks = Workload.Stream.chunks stream ~pieces:feeders in
  let _, dt =
    Conc.Runner.parallel_timed ~domains:feeders (fun i b ->
        Conc.Barrier.await b;
        Array.iter (Conc.Locked_countmin.update cm) chunks.(i))
  in
  dt

(* --- KMV: pipeline vs striped --- *)

module Km =
  Pipeline.Targets.Kmv
    (struct
      let seed = 5L
      let k = 256
    end)

module Kmv_pipe = Pipeline.Engine.Make (Km)

let pipeline_kmv_time ~feeders stream =
  let p = Kmv_pipe.create ~queue_capacity:4096 ~batch:2048 ~shards () in
  let chunks = Workload.Stream.chunks stream ~pieces:feeders in
  let (), dt =
    Conc.Runner.timed (fun () ->
        ignore
          (Conc.Runner.parallel ~domains:feeders (fun i ->
               Array.iter (fun x -> ignore (Kmv_pipe.ingest p x)) chunks.(i)));
        Kmv_pipe.drain p)
  in
  dt

let striped_kmv_time ~feeders stream =
  let t = Conc.Striped_kmv.create ~seed:5L ~domains:feeders () in
  let chunks = Workload.Stream.chunks stream ~pieces:feeders in
  let _, dt =
    Conc.Runner.parallel_timed ~domains:feeders (fun i b ->
        Conc.Barrier.await b;
        Array.iter (Conc.Striped_kmv.update t ~domain:i) chunks.(i))
  in
  dt

let rate dt = float_of_int total_updates /. dt /. 1e6

(* Run [f] [reps] times, register the per-rep rates under [name], return
   the mean rate. *)
let measure ~name ~feeders f =
  let rates = List.init reps (fun _ -> rate (f ())) in
  Bench_util.record_samples ~exp:"pipeline" ~name
    ~params:
      [
        ("feeders", Bench_util.json_int feeders);
        ("shards", Bench_util.json_int shards);
        ("total_updates", Bench_util.json_int total_updates);
      ]
    rates;
  List.fold_left ( +. ) 0.0 rates /. float_of_int reps

let run () =
  Bench_util.section
    "E8: sharded pipeline ingestion (Mops/s) vs shared-state sketches";
  Printf.printf "(pipeline: %d shards + 1 merger, batch 2048; mean of %d reps)\n"
    shards reps;
  let stream = seeded_stream () in
  let rows =
    List.map
      (fun feeders ->
        let pipe = measure ~name:"countmin-pipeline" ~feeders (fun () ->
            pipeline_cm_time ~feeders stream) in
        let lf = measure ~name:"countmin-pipeline-lockfree" ~feeders (fun () ->
            pipeline_cm_time ~queue:`Lockfree ~feeders stream) in
        let pcm = measure ~name:"countmin-pcm" ~feeders (fun () ->
            pcm_time ~feeders stream) in
        let locked = measure ~name:"countmin-locked" ~feeders (fun () ->
            locked_cm_time ~feeders stream) in
        [
          string_of_int feeders;
          Bench_util.fmt_float ~digits:2 pipe;
          Bench_util.fmt_float ~digits:2 lf;
          Bench_util.fmt_float ~digits:2 pcm;
          Bench_util.fmt_float ~digits:2 locked;
        ])
      [ 1; 2; 4 ]
  in
  Bench_util.table
    ~header:
      [ "feeders"; "pipeline CM"; "lockfree ring"; "PCM (atomics)"; "locked CM" ]
    rows;

  Bench_util.subsection "KMV distinct-count (4 feeders, Mops/s)";
  let feeders = 4 in
  let pipe = measure ~name:"kmv-pipeline" ~feeders (fun () ->
      pipeline_kmv_time ~feeders stream) in
  let striped = measure ~name:"kmv-striped" ~feeders (fun () ->
      striped_kmv_time ~feeders stream) in
  Bench_util.table
    ~header:[ "pipeline KMV"; "striped KMV" ]
    [
      [ Bench_util.fmt_float ~digits:2 pipe;
        Bench_util.fmt_float ~digits:2 striped ];
    ]
