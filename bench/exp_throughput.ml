(* E6 + E7: ingestion throughput of the IVL implementations against their
   linearizable baselines, across writer counts.

   Note on hosts with few cores: domains beyond the core count timeslice, so
   the columns then measure per-operation synchronization cost rather than
   parallel scaling; the step-complexity tables (E1/E2) carry the
   model-level claim either way. The expected shape on a multicore host is:
   PCM and the IVL counter scale with writers; the lock-based baselines
   flatten or degrade; FAA sits between (single contended cache line). *)

let total_cm_updates = 400_000
let total_counter_updates = 2_000_000

let time_parallel ~domains f =
  let _, dt = Conc.Runner.parallel_timed ~domains (fun i b ->
      Conc.Barrier.await b;
      f i)
  in
  dt

(* --- CountMin ingestion (E6) --- *)

let pcm_throughput ~writers stream =
  let family = Hashing.Family.seeded ~seed:5L ~rows:4 ~width:1024 in
  let pcm = Conc.Pcm.create ~family in
  let chunks = Workload.Stream.chunks stream ~pieces:writers in
  time_parallel ~domains:writers (fun i -> Array.iter (Conc.Pcm.update pcm) chunks.(i))

let locked_cm_throughput ~writers stream =
  let family = Hashing.Family.seeded ~seed:5L ~rows:4 ~width:1024 in
  let cm = Conc.Locked_countmin.create ~family in
  let chunks = Workload.Stream.chunks stream ~pieces:writers in
  time_parallel ~domains:writers (fun i ->
      Array.iter (Conc.Locked_countmin.update cm) chunks.(i))

let flat_pcm_throughput ~writers stream =
  let family = Hashing.Family.seeded ~seed:5L ~rows:4 ~width:1024 in
  let fp = Conc.Flat_pcm.create ~publish_every:64 ~family ~domains:writers () in
  let chunks = Workload.Stream.chunks stream ~pieces:writers in
  time_parallel ~domains:writers (fun i ->
      Array.iter (Conc.Flat_pcm.update fp ~domain:i) chunks.(i);
      Conc.Flat_pcm.flush fp ~domain:i)

(* Same boxed-atomic layout as [pcm_throughput], but hashing with the
   two-hash Kirsch–Mitzenmacher family: isolates the d-hashes -> 2-hashes
   saving from the layout change. *)
let km_pcm_throughput ~writers stream =
  let family = Hashing.Family.seeded_km ~seed:5L ~rows:4 ~width:1024 in
  let pcm = Conc.Pcm.create ~family in
  let chunks = Workload.Stream.chunks stream ~pieces:writers in
  time_parallel ~domains:writers (fun i -> Array.iter (Conc.Pcm.update pcm) chunks.(i))

(* Both hot-path changes at once: flat unboxed planes fed by the two-hash
   family — the configuration the PERFORMANCE.md headline quotes. *)
let flat_km_pcm_throughput ~writers stream =
  let family = Hashing.Family.seeded_km ~seed:5L ~rows:4 ~width:1024 in
  let fp = Conc.Flat_pcm.create ~publish_every:64 ~family ~domains:writers () in
  let chunks = Workload.Stream.chunks stream ~pieces:writers in
  time_parallel ~domains:writers (fun i ->
      Array.iter (Conc.Flat_pcm.update fp ~domain:i) chunks.(i);
      Conc.Flat_pcm.flush fp ~domain:i)

(* --- Batched counter updates (E7) --- *)

let ivl_counter_throughput ~writers =
  let c = Conc.Ivl_counter.create ~procs:writers in
  let per = total_counter_updates / writers in
  time_parallel ~domains:writers (fun i ->
      for _ = 1 to per do
        Conc.Ivl_counter.update c ~proc:i 1
      done)

let locked_counter_throughput ~writers =
  let c = Conc.Locked_counter.create () in
  let per = total_counter_updates / writers in
  time_parallel ~domains:writers (fun _ ->
      for _ = 1 to per do
        Conc.Locked_counter.update c 1
      done)

let faa_counter_throughput ~writers =
  let c = Conc.Faa_counter.create () in
  let per = total_counter_updates / writers in
  time_parallel ~domains:writers (fun _ ->
      for _ = 1 to per do
        Conc.Faa_counter.update c 1
      done)

let writer_counts = [ 1; 2; 4 ]

(* Mixed read/write workloads (Scenario): every implementation replays the
   identical operation sequence. *)
let mixed_cm_throughput ~impl ~writers ops =
  let family = Hashing.Family.seeded ~seed:6L ~rows:4 ~width:1024 in
  let parts = Workload.Scenario.split ops ~pieces:writers in
  match impl with
  | `Pcm ->
      let pcm = Conc.Pcm.create ~family in
      let _, dt =
        Conc.Runner.parallel_timed ~domains:writers (fun i b ->
            Conc.Barrier.await b;
            Array.iter
              (function
                | Workload.Scenario.Update a -> Conc.Pcm.update pcm a
                | Workload.Scenario.Query a -> ignore (Conc.Pcm.query pcm a))
              parts.(i))
      in
      dt
  | `Locked ->
      let cm = Conc.Locked_countmin.create ~family in
      let _, dt =
        Conc.Runner.parallel_timed ~domains:writers (fun i b ->
            Conc.Barrier.await b;
            Array.iter
              (function
                | Workload.Scenario.Update a -> Conc.Locked_countmin.update cm a
                | Workload.Scenario.Query a -> ignore (Conc.Locked_countmin.query cm a))
              parts.(i))
      in
      dt

let run () =
  Bench_util.section "E6: CountMin ingestion throughput (Mops/s), PCM vs global lock";
  Printf.printf "(host has %d recommended domain(s); see note in EXPERIMENTS.md)\n"
    (Domain.recommended_domain_count ());
  let stream =
    Workload.Stream.generate ~seed:77L (Workload.Stream.Zipf (100_000, 1.1))
      ~length:total_cm_updates
  in
  let mops total dt = float_of_int total /. dt /. 1e6 in
  let rows =
    List.map
      (fun w ->
        let t_pcm = pcm_throughput ~writers:w stream in
        let t_flat = flat_pcm_throughput ~writers:w stream in
        let t_km = km_pcm_throughput ~writers:w stream in
        let t_flat_km = flat_km_pcm_throughput ~writers:w stream in
        let t_lock = locked_cm_throughput ~writers:w stream in
        let params = [ ("writers", Bench_util.json_int w) ] in
        Bench_util.record ~exp:"throughput" ~name:"e6-pcm" ~params
          (mops total_cm_updates t_pcm);
        Bench_util.record ~exp:"throughput" ~name:"e6-flat-pcm" ~params
          (mops total_cm_updates t_flat);
        Bench_util.record ~exp:"throughput" ~name:"e6-km-pcm" ~params
          (mops total_cm_updates t_km);
        Bench_util.record ~exp:"throughput" ~name:"e6-flat-km-pcm" ~params
          (mops total_cm_updates t_flat_km);
        Bench_util.record ~exp:"throughput" ~name:"e6-locked-cm" ~params
          (mops total_cm_updates t_lock);
        [
          string_of_int w;
          Bench_util.fmt_rate total_cm_updates t_pcm;
          Bench_util.fmt_rate total_cm_updates t_flat;
          Bench_util.fmt_rate total_cm_updates t_km;
          Bench_util.fmt_rate total_cm_updates t_flat_km;
          Bench_util.fmt_rate total_cm_updates t_lock;
          Printf.sprintf "%.2fx" (t_pcm /. t_flat_km);
        ])
      writer_counts
  in
  Bench_util.table
    ~header:
      [
        "writers";
        "PCM";
        "flat PCM";
        "KM PCM";
        "flat+KM";
        "locked CM";
        "flat+KM speedup";
      ]
    rows;

  Bench_util.subsection "mixed workloads (4 domains, Mops/s)";
  let mixed_rows =
    List.map
      (fun ratio ->
        let ops =
          Workload.Scenario.mixed ~seed:8L
            ~shape:(Workload.Stream.Zipf (100_000, 1.1))
            ~query_ratio:ratio ~length:total_cm_updates
        in
        let t_pcm = mixed_cm_throughput ~impl:`Pcm ~writers:4 ops in
        let t_lock = mixed_cm_throughput ~impl:`Locked ~writers:4 ops in
        [
          Printf.sprintf "%.0f%% queries" (100.0 *. ratio);
          Bench_util.fmt_rate total_cm_updates t_pcm;
          Bench_util.fmt_rate total_cm_updates t_lock;
          Printf.sprintf "%.2fx" (t_lock /. t_pcm);
        ])
      [ 0.01; 0.1; 0.5 ]
  in
  Bench_util.table ~header:[ "mix"; "PCM"; "locked CM"; "PCM speedup" ] mixed_rows;

  Bench_util.section
    "E7: batched counter update throughput (Mops/s), IVL vs baselines";
  let rows =
    List.map
      (fun w ->
        let t_ivl = ivl_counter_throughput ~writers:w in
        let t_lock = locked_counter_throughput ~writers:w in
        let t_faa = faa_counter_throughput ~writers:w in
        let params = [ ("writers", Bench_util.json_int w) ] in
        Bench_util.record ~exp:"throughput" ~name:"e7-ivl-counter" ~params
          (mops total_counter_updates t_ivl);
        Bench_util.record ~exp:"throughput" ~name:"e7-faa-counter" ~params
          (mops total_counter_updates t_faa);
        Bench_util.record ~exp:"throughput" ~name:"e7-locked-counter" ~params
          (mops total_counter_updates t_lock);
        [
          string_of_int w;
          Bench_util.fmt_rate total_counter_updates t_ivl;
          Bench_util.fmt_rate total_counter_updates t_faa;
          Bench_util.fmt_rate total_counter_updates t_lock;
          Printf.sprintf "%.2fx" (t_lock /. t_ivl);
        ])
      writer_counts
  in
  Bench_util.table
    ~header:[ "writers"; "IVL (SWMR)"; "FAA"; "locked"; "IVL vs locked" ]
    rows;
  print_endline
    "shape check: the IVL counter's O(1) uncontended update beats the lock at";
  print_endline
    "every width; FAA matches O(1) but requires a stronger primitive than the";
  print_endline "SWMR registers Theorem 14 assumes.";

  (* Allocation audit: the hot update paths are designed to allocate
     nothing — probes pack into an immediate int, planes are unboxed, the
     striped total FAAs in place. Recorded as B/op entries so `bench
     compare` hard-fails if any of these paths starts boxing. *)
  Bench_util.subsection "allocation audit (bytes allocated per update)";
  let family = Hashing.Family.seeded ~seed:5L ~rows:4 ~width:1024 in
  let km_family = Hashing.Family.seeded_km ~seed:5L ~rows:4 ~width:1024 in
  let audit_ops = 100_000 in
  let audits =
    [
      ( "alloc-pcm-update",
        let pcm = Conc.Pcm.create ~family in
        let x = ref 0 in
        fun () ->
          incr x;
          Conc.Pcm.update pcm !x );
      ( "alloc-flat-pcm-update",
        let fp = Conc.Flat_pcm.create ~family ~domains:1 () in
        let x = ref 0 in
        fun () ->
          incr x;
          Conc.Flat_pcm.update fp ~domain:0 !x );
      ( "alloc-km-pcm-update",
        let pcm = Conc.Pcm.create ~family:km_family in
        let x = ref 0 in
        fun () ->
          incr x;
          Conc.Pcm.update pcm !x );
      ( "alloc-pcm-query",
        let pcm = Conc.Pcm.create ~family in
        fun () -> ignore (Conc.Pcm.query pcm 42) );
      ( "alloc-flat-pcm-query",
        let fp = Conc.Flat_pcm.create ~family ~domains:2 () in
        fun () -> ignore (Conc.Flat_pcm.query fp 42) );
      ( "alloc-ivl-counter-update",
        let c = Conc.Ivl_counter.create ~procs:4 in
        fun () -> Conc.Ivl_counter.update c ~proc:0 1 );
      ( "alloc-faa-counter-update",
        let c = Conc.Faa_counter.create () in
        fun () -> Conc.Faa_counter.update c 1 );
    ]
  in
  let rows =
    List.map
      (fun (name, f) ->
        let bytes = Bench_util.allocated_bytes_per_op ~ops:audit_ops f in
        Bench_util.record ~exp:"throughput" ~name ~unit_:"B/op" bytes;
        [ name; Printf.sprintf "%.2f" bytes ])
      audits
  in
  Bench_util.table ~header:[ "path"; "B/op" ] rows;
  print_endline
    "shape check: every row must read 0.00 — a nonzero value means a hot";
  print_endline "path is boxing (and `bench compare' will hard-fail it)."
