(* E18: the shard-queue seam head to head — mutex MPSC vs lock-free ring.

   Three tables, three claims:

   - raw queue throughput (producers pushing, one popper draining in
     batches): the ring's CAS hand-off vs the mutex/condvar critical
     section, across the writer counts the pipeline actually runs;
   - allocation audits: both hot paths move ints through preallocated
     slots and caller-owned buffers, so steady-state push+pop is pinned
     at 0 B/op (unit "B/op" — the structural side of `bench compare`);
   - the end-to-end payoff: the 4-feeder CountMin pipeline, identical
     except for `~queue`, with the lockfree/mutex ratio recorded as a
     factor entry (unit "x") so the gate fails if the win evaporates.

   The queue capacity and batch sizes mirror the engine's defaults so the
   microbench exercises the same occupancy regime the pipeline does. *)

module Sq = Pipeline.Squeue

let items = 200_000
let reps = 3
let capacity = 1024
let pop_chunk = 256

let impl_name = Sq.impl_to_string

(* --- raw queue throughput --------------------------------------------- *)

(* [producers] domains push [items/producers] each; the caller's domain
   drains concurrently with batched blocking pops until close. The rate
   counts completed transfers (push + pop) per second. *)
let queue_time ~producers impl =
  let q = Sq.create ~impl ~capacity in
  let per = items / producers in
  let total = per * producers in
  let buf = Array.make pop_chunk 0 in
  let popped = ref 0 in
  let (), dt =
    Conc.Runner.timed (fun () ->
        let feeders =
          Domain.spawn (fun () ->
              ignore
                (Conc.Runner.parallel ~domains:producers (fun _ ->
                     for i = 1 to per do
                       ignore (Sq.push q i)
                     done));
              Sq.close q)
        in
        let rec drain () =
          match Sq.pop_into q buf ~max:pop_chunk with
          | -1 -> ()
          | n ->
              popped := !popped + n;
              drain ()
        in
        drain ();
        Domain.join feeders)
  in
  if !popped <> total then
    failwith
      (Printf.sprintf "queue bench lost items: popped %d of %d" !popped total);
  float_of_int total /. dt /. 1e6

let measure_queue ~producers impl =
  let name = Printf.sprintf "e18-queue-%s" (impl_name impl) in
  let rates = List.init reps (fun _ -> queue_time ~producers impl) in
  Bench_util.record_samples ~exp:"queue" ~name
    ~params:
      [
        ("producers", Bench_util.json_int producers);
        ("capacity", Bench_util.json_int capacity);
        ("items", Bench_util.json_int items);
      ]
    rates;
  List.fold_left ( +. ) 0.0 rates /. float_of_int reps

(* --- allocation audits ------------------------------------------------- *)

(* One op = one push + one batched pop of that element, on a warm queue:
   the steady-state cycle of a shard worker. Both implementations are
   required to stay allocation-free here — the ring because its slots are
   preallocated and the pop lands in a caller buffer, the mutex queue
   because its circular buffer and [unsafe_take_into] are just as flat. *)
let bop impl =
  let q = Sq.create ~impl ~capacity in
  let buf = Array.make 1 0 in
  (* Warm occupancy so neither impl is on a resize/empty edge. *)
  for i = 1 to 16 do
    ignore (Sq.try_push q i)
  done;
  Bench_util.allocated_bytes_per_op ~ops:100_000 (fun () ->
      ignore (Sq.try_push q 7);
      ignore (Sq.try_pop_into q buf ~max:1))

let audit_allocs () =
  Bench_util.subsection "allocation audit (push+pop cycle, B/op)";
  let rows =
    List.map
      (fun impl ->
        let b = bop impl in
        Bench_util.record ~exp:"queue"
          ~name:(Printf.sprintf "e18-%s-push-pop" (impl_name impl))
          ~unit_:"B/op" b;
        [ impl_name impl; Bench_util.fmt_float ~digits:1 b ])
      [ `Mutex; `Lockfree ]
  in
  Bench_util.table ~header:[ "impl"; "B/op" ] rows

(* --- end-to-end pipeline gain ------------------------------------------ *)

module Cm =
  Pipeline.Targets.Countmin
    (struct
      let seed = 5L
      let rows = 4
      let width = 1024
    end)

module P = Pipeline.Engine.Make (Cm)

let pipeline_updates = 100_000
let pipeline_feeders = 4

let pipeline_time ?steal ~queue stream =
  let p =
    P.create ?steal ~queue ~queue_capacity:4096 ~batch:2048 ~shards:4 ()
  in
  let chunks = Workload.Stream.chunks stream ~pieces:pipeline_feeders in
  let (), dt =
    Conc.Runner.timed (fun () ->
        ignore
          (Conc.Runner.parallel ~domains:pipeline_feeders (fun i ->
               Array.iter (fun x -> ignore (P.ingest p x)) chunks.(i)));
        P.drain p)
  in
  float_of_int pipeline_updates /. dt /. 1e6

let measure_pipeline ?steal ?suffix ~queue stream =
  let name =
    Printf.sprintf "e18-pipeline-%s%s" (impl_name queue)
      (match suffix with Some s -> "-" ^ s | None -> "")
  in
  let rates = List.init reps (fun _ -> pipeline_time ?steal ~queue stream) in
  Bench_util.record_samples ~exp:"queue" ~name
    ~params:
      [
        ("feeders", Bench_util.json_int pipeline_feeders);
        ("total_updates", Bench_util.json_int pipeline_updates);
      ]
    rates;
  List.fold_left ( +. ) 0.0 rates /. float_of_int reps

let run () =
  Bench_util.section "E18: shard queue — mutex MPSC vs lock-free ring";
  Printf.printf
    "(capacity %d, %d items, blocking pops of <=%d; mean of %d reps)\n"
    capacity items pop_chunk reps;
  let rows =
    List.map
      (fun producers ->
        let mx = measure_queue ~producers `Mutex in
        let lf = measure_queue ~producers `Lockfree in
        [
          string_of_int producers;
          Bench_util.fmt_float ~digits:2 mx;
          Bench_util.fmt_float ~digits:2 lf;
          Bench_util.fmt_float ~digits:2 (lf /. mx);
        ])
      [ 1; 2; 4 ]
  in
  Bench_util.table
    ~header:[ "producers"; "mutex (Mops/s)"; "lockfree (Mops/s)"; "ratio" ]
    rows;

  audit_allocs ();

  Bench_util.subsection
    (Printf.sprintf
       "pipeline end to end (%d feeders, CountMin, Mops/s ingested)"
       pipeline_feeders);
  let stream =
    Workload.Stream.generate ~seed:11L
      (Workload.Stream.Zipf (50_000, 1.1))
      ~length:pipeline_updates
  in
  let mx = measure_pipeline ~queue:`Mutex stream in
  let lf = measure_pipeline ~queue:`Lockfree stream in
  let lf_ns =
    measure_pipeline ~steal:false ~suffix:"nosteal" ~queue:`Lockfree stream
  in
  let gain = lf /. mx in
  (* The headline factor: lockfree ring + stealing over the mutex
     baseline at 4 writers. Recorded as unit "x" so `bench compare`
     treats a drop as fatal, not as timing noise. *)
  Bench_util.record ~exp:"queue" ~name:"e18-pipeline-4w-gain"
    ~params:[ ("feeders", Bench_util.json_int pipeline_feeders) ]
    ~unit_:"x" gain;
  Bench_util.table
    ~header:[ "queue"; "Mops/s"; "gain" ]
    [
      [ "mutex"; Bench_util.fmt_float ~digits:2 mx; "1.00" ];
      [ "lockfree"; Bench_util.fmt_float ~digits:2 lf;
        Bench_util.fmt_float ~digits:2 gain ];
      [ "lockfree (no steal)"; Bench_util.fmt_float ~digits:2 lf_ns;
        Bench_util.fmt_float ~digits:2 (lf_ns /. mx) ];
    ]
