(* E12: ablations on the design choices DESIGN.md calls out.

   (a) Checker memoization: the engine prunes failed prefixes by placed-set
       bitmask when updates commute. Disable the flag and time the same
       checks — this is the difference between exhaustive checking being
       usable and not.
   (b) CountMin depth: the d (rows) knob trades update cost for confidence
       1 − e^{-d}; sweep d and report update cost and observed max
       over-estimate.
   (c) Delegation batching: the buffered PCM's flush_every knob — throughput
       and staleness against plain PCM (Section 3.4's delegation sketch
       comparison).
   (d) Kirsch–Mitzenmacher double hashing: derived rows g_i = h1 + i·step
       cost 2 field evaluations per element instead of d, at the price of
       correlated rows. Sweep d with both layouts on one stream and report
       update cost and observed max over-estimate — the accuracy side of the
       e6-km-pcm throughput rows. *)

module M = Simulation.Machine
module S = Simulation.Sched
module A = Simulation.Algos

module Counter_memo = Ivl.Check.Make (Spec.Counter_spec)

module Counter_spec_nomemo = struct
  include Spec.Counter_spec

  let commutative_updates = false
end

module Counter_nomemo = Ivl.Check.Make (Counter_spec_nomemo)

(* A contended history with [updates] updates and 2 reads. The returned
   history is then corrupted: the last read's return value is replaced by an
   impossible one, so the checker must exhaust the search space to reject it
   — failed searches are where pruning matters. *)
let checker_history ~updates seed =
  (* Spread updates over many processes: program order chains are what keep
     the linearization space small, so width — not length — is what makes
     the search hard. *)
  let writers = max 2 (updates / 2) in
  let n = writers + 1 in
  let per = (updates + writers - 1) / writers in
  let scripts =
    Array.init n (fun p ->
        if p < writers then
          List.init per (fun k -> A.Ivl_counter.update_op ~proc:p ~amount:(k + 1) ())
        else [ A.Ivl_counter.read_op ~n (); A.Ivl_counter.read_op ~n () ])
  in
  let h =
    (M.run ~registers:(A.Ivl_counter.registers ~n) ~scripts ~sched:(S.Random seed) ())
      .M.history
  in
  (* Corrupt: make one read claim a value above any possible total. *)
  let poisoned = ref false in
  Hist.History.events h
  |> List.map (fun (ev : (int, int, int) Hist.History.event) ->
         match (ev.dir, ev.op.Hist.Op.kind, !poisoned) with
         | Hist.History.Rsp, Hist.Op.Query _, false ->
             poisoned := true;
             { ev with op = Hist.Op.with_return ev.op 1_000_000 }
         | _ -> ev)
  |> Hist.History.of_events

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let checker_ablation () =
  Bench_util.subsection
    "(a) checker memoization: ms per IVL check (5 histories each)";
  let rows =
    List.map
      (fun updates ->
        let histories =
          List.init 5 (fun i -> checker_history ~updates (Int64.of_int (100 + i)))
        in
        let verdicts = List.map Counter_memo.is_ivl histories in
        assert (List.for_all not verdicts);
        let (), t_memo = time (fun () -> List.iter (fun h -> ignore (Counter_memo.is_ivl h)) histories) in
        let (), t_nomemo =
          if updates <= 10 then
            time (fun () -> List.iter (fun h -> ignore (Counter_nomemo.is_ivl h)) histories)
          else ((), nan)
        in
        [
          string_of_int updates;
          Printf.sprintf "%.2f" (1000.0 *. t_memo /. 5.0);
          (if Float.is_nan t_nomemo then "(skipped)"
           else Printf.sprintf "%.2f" (1000.0 *. t_nomemo /. 5.0));
        ])
      [ 6; 8; 10; 12; 14; 16 ]
  in
  Bench_util.table ~header:[ "updates"; "with memo"; "without memo" ] rows;
  print_endline
    "shape check: without Wing-Gong-style pruning the search is factorial;";
  print_endline "with it, checking stays in milliseconds well past 16 operations."

let depth_ablation () =
  Bench_util.subsection "(b) CountMin depth d: cost vs max over-estimate";
  let stream =
    Workload.Stream.generate ~seed:31L (Workload.Stream.Zipf (2_000, 1.2))
      ~length:100_000
  in
  let exact = Sketches.Exact.create () in
  Array.iter (Sketches.Exact.update exact) stream;
  let rows =
    List.map
      (fun d ->
        let family = Hashing.Family.seeded ~seed:32L ~rows:d ~width:512 in
        let pcm = Conc.Pcm.create ~family in
        let (), dt = time (fun () -> Array.iter (Conc.Pcm.update pcm) stream) in
        let worst = ref 0 in
        for a = 0 to 1_999 do
          let over = Conc.Pcm.query pcm a - Sketches.Exact.frequency exact a in
          if over > !worst then worst := over
        done;
        [
          string_of_int d;
          Printf.sprintf "%.0f" (dt *. 1e9 /. 100_000.0);
          string_of_int !worst;
        ])
      [ 1; 2; 4; 8 ]
  in
  Bench_util.table ~header:[ "rows d"; "update ns"; "max over-estimate" ] rows;
  print_endline
    "shape check: update cost grows linearly in d; the worst over-estimate";
  print_endline "falls as collisions need to align in every row."

let delegation_ablation () =
  Bench_util.subsection "(c) delegation batching (buffered PCM vs plain PCM)";
  let stream =
    Workload.Stream.generate ~seed:33L (Workload.Stream.Zipf (10_000, 1.3))
      ~length:400_000
  in
  let domains = 4 in
  let family = Hashing.Family.seeded ~seed:34L ~rows:4 ~width:1024 in
  let chunks = Workload.Stream.chunks stream ~pieces:domains in
  let plain () =
    let pcm = Conc.Pcm.create ~family in
    let _, dt =
      Conc.Runner.parallel_timed ~domains (fun i b ->
          Conc.Barrier.await b;
          Array.iter (Conc.Pcm.update pcm) chunks.(i))
    in
    dt
  in
  let buffered flush_every =
    let b = Conc.Buffered_pcm.create ~flush_every ~family ~domains () in
    let _, dt =
      Conc.Runner.parallel_timed ~domains (fun i bar ->
          Conc.Barrier.await bar;
          Array.iter (fun a -> Conc.Buffered_pcm.update b ~domain:i a) chunks.(i);
          Conc.Buffered_pcm.flush b ~domain:i)
    in
    dt
  in
  let t_plain = plain () in
  let rows =
    [ "plain PCM (flush=1)"; "" ]
    :: List.map
         (fun fe ->
           let dt = buffered fe in
           [
             Printf.sprintf "buffered, flush_every=%d" fe;
             Bench_util.fmt_rate 400_000 dt;
           ])
         [ 16; 64; 256; 1024 ]
  in
  let rows =
    match rows with
    | _ :: rest -> [ "plain PCM"; Bench_util.fmt_rate 400_000 t_plain ] :: rest
    | [] -> []
  in
  Bench_util.table ~header:[ "variant"; "Mops/s" ] rows;
  Printf.printf
    "staleness bound: domains x (flush_every - 1) buffered updates; plain PCM = 0.\n";
  print_endline
    "note: on a single-core host atomic increments are uncontended and cheap,";
  print_endline
    "so batching shows little gain here; its payoff is avoiding cross-core";
  print_endline "cache-line traffic, which needs a multicore host to observe."

let km_ablation () =
  Bench_util.subsection
    "(d) Kirsch-Mitzenmacher double hashing: cost vs max over-estimate";
  let length = 100_000 in
  let stream =
    Workload.Stream.generate ~seed:35L (Workload.Stream.Zipf (2_000, 1.2))
      ~length
  in
  let exact = Sketches.Exact.create () in
  Array.iter (Sketches.Exact.update exact) stream;
  let measure family =
    let pcm = Conc.Pcm.create ~family in
    let (), dt = time (fun () -> Array.iter (Conc.Pcm.update pcm) stream) in
    let worst = ref 0 in
    for a = 0 to 1_999 do
      let over = Conc.Pcm.query pcm a - Sketches.Exact.frequency exact a in
      if over > !worst then worst := over
    done;
    (dt *. 1e9 /. float_of_int length, !worst)
  in
  let rows =
    List.map
      (fun d ->
        let rows_ns, rows_worst =
          measure (Hashing.Family.seeded ~seed:36L ~rows:d ~width:512)
        in
        let km_ns, km_worst =
          measure (Hashing.Family.seeded_km ~seed:36L ~rows:d ~width:512)
        in
        Bench_util.record ~exp:"ablation" ~name:"e12-km-overestimate"
          ~params:[ ("rows", Bench_util.json_int d); ("layout", "\"rows\"") ]
          ~unit_:"count" (float_of_int rows_worst);
        Bench_util.record ~exp:"ablation" ~name:"e12-km-overestimate"
          ~params:[ ("rows", Bench_util.json_int d); ("layout", "\"km\"") ]
          ~unit_:"count" (float_of_int km_worst);
        [
          string_of_int d;
          Printf.sprintf "%.0f" rows_ns;
          string_of_int rows_worst;
          Printf.sprintf "%.0f" km_ns;
          string_of_int km_worst;
        ])
      [ 2; 4; 8 ]
  in
  Bench_util.table
    ~header:
      [ "rows d"; "rows: ns/up"; "rows: max over"; "km: ns/up"; "km: max over" ]
    rows;
  print_endline
    "shape check: km update cost stays near-flat in d (2 hashes per element);";
  print_endline
    "its over-estimates track the independent-rows layout within small factors,";
  print_endline "matching Kirsch-Mitzenmacher's asymptotic-equivalence result."

let run () =
  Bench_util.section "E12: ablations";
  checker_ablation ();
  depth_ablation ();
  delegation_ablation ();
  km_ablation ()
