(* E5: Corollary 8 — the concurrent CountMin sketch preserves the sequential
   (ε,δ) error bound relative to the query-interval endpoints.

   Writers ingest a stream into PCM while a reader repeatedly queries probe
   elements. Per-probe atomic oracles bracket the ideal frequency: [pre] is
   bumped before the PCM update, [post] after, so at any instant
   post ≤ f_applied ≤ pre. Corollary 8 then predicts, per query:

     f_start ≤ f̂            — checked against post (never violated), and
     f̂ ≤ f_end + αn          — checked against pre (violations ≤ δ).

   A sequential control column runs the same stream through the sequential
   sketch and measures the classic over-estimate rate against the same αn. *)

type config = {
  label : string;
  shape : Workload.Stream.shape;
  alpha : float;
  delta : float;
  length : int;
}

let configs =
  [
    { label = "zipf(1.1)  a=2%";
      shape = Workload.Stream.Zipf (2_000, 1.1); alpha = 0.02; delta = 0.05;
      length = 50_000 };
    { label = "zipf(1.3)  a=1%";
      shape = Workload.Stream.Zipf (2_000, 1.3); alpha = 0.01; delta = 0.05;
      length = 50_000 };
    { label = "uniform    a=2%";
      shape = Workload.Stream.Uniform 2_000; alpha = 0.02; delta = 0.05;
      length = 50_000 };
    { label = "bursty     a=2%";
      shape = Workload.Stream.Bursty (2_000, 64); alpha = 0.02; delta = 0.05;
      length = 50_000 };
  ]

let probes = [ 0; 1; 5; 17; 99 ]

let run_config seed cfg =
  let pcm = Conc.Pcm.create_for_error ~seed ~alpha:cfg.alpha ~delta:cfg.delta in
  let stream = Workload.Stream.generate ~seed:(Int64.add seed 7L) cfg.shape ~length:cfg.length in
  let chunks = Workload.Stream.chunks stream ~pieces:3 in
  let pre = Array.init 2_000 (fun _ -> Atomic.make 0) in
  let post = Array.init 2_000 (fun _ -> Atomic.make 0) in
  let lower_viol = Atomic.make 0 and upper_viol = Atomic.make 0 in
  let samples = Atomic.make 0 in
  let _ =
    Conc.Runner.parallel ~domains:4 (fun i ->
        if i < 3 then
          Array.iter
            (fun a ->
              ignore (Atomic.fetch_and_add pre.(a) 1);
              Conc.Pcm.update pcm a;
              ignore (Atomic.fetch_and_add post.(a) 1))
            chunks.(i)
        else
          for _ = 1 to 1_500 do
            List.iter
              (fun a ->
                let f_start_lb = Atomic.get post.(a) in
                let est = Conc.Pcm.query pcm a in
                let f_end_ub = Atomic.get pre.(a) in
                let n = Conc.Pcm.updates pcm in
                ignore (Atomic.fetch_and_add samples 1);
                if est < f_start_lb then ignore (Atomic.fetch_and_add lower_viol 1);
                if float_of_int est
                   > float_of_int f_end_ub +. (cfg.alpha *. float_of_int n)
                then ignore (Atomic.fetch_and_add upper_viol 1))
              probes
          done)
  in
  (* Sequential control: over-estimate rate of the plain sketch on the same
     stream, same sizing. *)
  let seq = Sketches.Countmin.create_for_error ~seed:(Int64.add seed 13L) ~alpha:cfg.alpha ~delta:cfg.delta in
  let exact = Sketches.Exact.create () in
  Array.iter
    (fun a ->
      Sketches.Countmin.update seq a;
      Sketches.Exact.update exact a)
    stream;
  let n = Sketches.Exact.total exact in
  let seq_viol =
    List.length
      (List.filter
         (fun a ->
           float_of_int (Sketches.Countmin.query seq a)
           > float_of_int (Sketches.Exact.frequency exact a)
             +. (cfg.alpha *. float_of_int n))
         (List.init 2_000 Fun.id))
  in
  ( Atomic.get samples,
    Atomic.get lower_viol,
    float_of_int (Atomic.get upper_viol) /. float_of_int (max 1 (Atomic.get samples)),
    float_of_int seq_viol /. 2_000.0 )

let run () =
  Bench_util.section "E5: (epsilon,delta) error preservation under concurrency (Corollary 8)";
  let rows =
    List.map
      (fun cfg ->
        let samples, lower, conc_rate, seq_rate = run_config 99L cfg in
        [
          cfg.label;
          string_of_int samples;
          string_of_int lower;
          Printf.sprintf "%.4f" conc_rate;
          Printf.sprintf "%.4f" seq_rate;
          Printf.sprintf "%.2f" cfg.delta;
        ])
      configs
  in
  Bench_util.table
    ~header:
      [ "workload"; "queries"; "f<f_start"; "conc viol rate"; "seq viol rate"; "delta" ]
    rows;
  print_endline
    "shape check: 'f<f_start' is identically 0 (CM cells only grow); both";
  print_endline
    "violation-rate columns stay below delta — the concurrent sketch inherits";
  print_endline "the sequential bound, without locks or snapshots."
