(* E14: what the observability layer costs.

   The design claim behind lib/obs is that IVL instruments are cheap enough
   to leave on: a counter add is one striped fetch-and-add, a gauge set one
   padded plain store, a trace emit three plain stores plus a stamp tick —
   none of them allocate, none of them lock. This experiment pins that:

   - allocation audits (B/op) on every hot-path primitive, gated
     structurally by `bench compare` — a nonzero counter-add audit is a
     boxing bug, not noise;
   - single-op latencies (ns/op) for the same primitives plus a full
     registry scrape, so the "scrapes don't perturb writers" story has a
     number attached;
   - the headline: end-to-end pipeline ingestion throughput bare vs fully
     instrumented (metrics registry + trace rings + merge-lag timer),
     recorded both as Mops/s rows and as one "pct" overhead entry that
     `bench compare` gates on absolute drift (docs/OBSERVABILITY.md
     documents the few-percent budget). *)

let total_updates = 400_000
let reps = 4
let shards = 4
let feeders = 4
let batch = 512

module P = Pipeline.Engine.Make (Pipeline.Targets.Counter)

let seeded_stream () =
  Workload.Stream.generate ~seed:13L
    (Workload.Stream.Zipf (50_000, 1.1))
    ~length:total_updates

(* ---------------- allocation audits ---------------- *)

let alloc_audits () =
  Bench_util.subsection "allocation audits (bytes per op; 0 = silent hot path)";
  let c = Obs.Counter.create () in
  let g = Obs.Gauge.create () in
  let h = Obs.Histogram.create () in
  let tr = Obs.Trace.create ~lanes:1 ~capacity:1024 () in
  (* Compare matches entries by (name, params): the "-alloc" suffix keeps
     these from colliding with the ns/op rows for the same paths. *)
  let audit name f =
    let bytes = Bench_util.allocated_bytes_per_op ~ops:200_000 f in
    Bench_util.record ~exp:"obs" ~name:(name ^ "-alloc") ~unit_:"B/op" bytes;
    [ name; Printf.sprintf "%.2f" bytes ]
  in
  Bench_util.table
    ~header:[ "path"; "B/op" ]
    [
      audit "e14-counter-add" (fun () -> Obs.Counter.add c 1);
      (* Constant operands: boxing a freshly computed float would bill the
         caller, not the instrument — the audit isolates the store. *)
      audit "e14-gauge-set" (fun () -> Obs.Gauge.set g 2.5);
      audit "e14-histogram-observe" (fun () -> Obs.Histogram.observe h 0.003);
      audit "e14-trace-emit" (fun () ->
          Obs.Trace.emit tr ~lane:0 ~tag:"bench" ~a:1 ~b:2);
    ]

(* ---------------- single-op latencies ---------------- *)

let micro () =
  let c = Obs.Counter.create () in
  let g = Obs.Gauge.create () in
  let h = Obs.Histogram.create () in
  let tr = Obs.Trace.create ~lanes:1 ~capacity:1024 () in
  let reg = Obs.Registry.create () in
  let rc = Obs.Registry.counter reg "bench_total" in
  Obs.Counter.add rc 1;
  ignore (Obs.Registry.gauge reg ~labels:[ ("shard", "0") ] "bench_depth");
  ignore (Obs.Registry.histogram reg "bench_latency_seconds");
  let open Bechamel in
  let tests =
    [
      Test.make ~name:"e14-counter-add"
        (Staged.stage (fun () -> Obs.Counter.add c 1));
      Test.make ~name:"e14-counter-read"
        (Staged.stage (fun () -> ignore (Obs.Counter.read c)));
      Test.make ~name:"e14-gauge-set" (Staged.stage (fun () -> Obs.Gauge.set g 2.5));
      Test.make ~name:"e14-histogram-observe"
        (Staged.stage (fun () -> Obs.Histogram.observe h 0.003));
      Test.make ~name:"e14-trace-emit"
        (Staged.stage (fun () -> Obs.Trace.emit tr ~lane:0 ~tag:"bench" ~a:1 ~b:2));
      Test.make ~name:"e14-registry-scrape"
        (Staged.stage (fun () -> ignore (Obs.Registry.snapshot reg)));
    ]
  in
  let results = Bench_util.run_bechamel tests in
  Bench_util.print_bechamel_table ~title:"single-operation latencies" results;
  List.iter
    (fun (name, ns) ->
      (* Bechamel prefixes group names; keep the e14-* leaf. *)
      let leaf =
        match String.rindex_opt name '/' with
        | Some i -> String.sub name (i + 1) (String.length name - i - 1)
        | None -> name
      in
      Bench_util.record ~exp:"obs" ~name:leaf ~unit_:"ns/op" ns)
    results

(* ---------------- end-to-end pipeline overhead ---------------- *)

(* One full ingestion run; instrumented runs carry the registry, the trace
   rings, the merge-lag timer, and a span tracer sampling 1/64 batches with
   the feeders rolling the die — the whole telemetry surface a production
   run would enable, distributed tracing included. Returns (elapsed
   seconds, registry). *)
let run_once ~instrumented stream =
  let reg = if instrumented then Some (Obs.Registry.create ()) else None in
  let tr =
    if instrumented then
      Some (Obs.Trace.create ~lanes:(shards + 2) ~capacity:1024 ())
    else None
  in
  let tracer =
    match reg with
    | Some reg -> Some (Obs.Tracer.create ~sample_every:64 ~metrics:reg ())
    | None -> None
  in
  let p =
    P.create ~queue_capacity:4096 ~batch ?metrics:reg ?trace:tr ?tracer
      ~shards ()
  in
  let chunks = Workload.Stream.chunks stream ~pieces:feeders in
  let (), dt =
    Conc.Runner.timed (fun () ->
        ignore
          (Conc.Runner.parallel ~domains:feeders (fun i ->
               match tracer with
               | None -> Array.iter (fun x -> ignore (P.ingest p x)) chunks.(i)
               | Some tr ->
                   (* Roll the sampling die once per [batch] items — the
                      same cadence a batching edge would. *)
                   let since = ref 0 in
                   Array.iter
                     (fun x ->
                       if !since = 0 then begin
                         since := batch;
                         match Obs.Tracer.sample tr with
                         | None -> ()
                         | Some ctx ->
                             let now = Obs.Tracer.now_ns () in
                             let sid =
                               Obs.Tracer.record tr ~ctx ~stage:"ingest"
                                 ~start_ns:now ~end_ns:now
                             in
                             P.trace_mark p ~key:x
                               ~ctx:(Obs.Span.with_parent ctx sid)
                       end;
                       decr since;
                       ignore (P.ingest p x))
                     chunks.(i)));
        P.drain p)
  in
  (dt, reg)

let rate dt = float_of_int total_updates /. dt /. 1e6

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc

let pipeline_overhead () =
  Bench_util.subsection "pipeline ingestion: bare vs instrumented";
  let stream = seeded_stream () in
  let params =
    [
      ("feeders", Bench_util.json_int feeders);
      ("shards", Bench_util.json_int shards);
      ("batch", Bench_util.json_int batch);
      ("total_updates", Bench_util.json_int total_updates);
    ]
  in
  (* Warm up once (page-in, domain pool, allocator) and interleave the
     configurations so neither gets all the cold reps — an overhead in the
     low percent is smaller than the cold-start bias otherwise. *)
  ignore (run_once ~instrumented:false stream);
  let last_reg = ref None in
  let pairs =
    List.init reps (fun k ->
        (* Alternate which config runs first within the pair: the second
           run of a pair always sees a warmer stream array. *)
        if k mod 2 = 0 then begin
          let dt_bare, _ = run_once ~instrumented:false stream in
          let dt_instr, reg = run_once ~instrumented:true stream in
          last_reg := reg;
          (rate dt_bare, rate dt_instr)
        end
        else begin
          let dt_instr, reg = run_once ~instrumented:true stream in
          let dt_bare, _ = run_once ~instrumented:false stream in
          last_reg := reg;
          (rate dt_bare, rate dt_instr)
        end)
  in
  let bare_rates = List.map fst pairs and instr_rates = List.map snd pairs in
  Bench_util.record_samples ~exp:"obs" ~name:"e14-pipeline-bare" ~params
    bare_rates;
  Bench_util.record_samples ~exp:"obs" ~name:"e14-pipeline-instrumented" ~params
    instr_rates;
  let mean l = List.fold_left ( +. ) 0.0 l /. float_of_int reps in
  let bare = mean bare_rates and instr = mean instr_rates in
  let reg = !last_reg in
  let overhead = (bare -. instr) /. bare *. 100.0 in
  Bench_util.record ~exp:"obs" ~name:"e14-pipeline-overhead" ~params ~unit_:"pct"
    overhead;
  Bench_util.table
    ~header:[ "config"; "Mops/s"; "overhead" ]
    [
      [ "bare"; Printf.sprintf "%.2f" bare; "-" ];
      [
        "metrics + trace + lag timer + 1/64 spans";
        Printf.sprintf "%.2f" instr;
        Printf.sprintf "%.1f%%" overhead;
      ];
    ];
  (* The last instrumented run's scrape becomes a checked-in-able artifact:
     the summary manifest points at it, CI uploads it next to the JSON
     mirrors, and a reviewer can eyeball what an instrumented soak exports
     without rerunning anything. *)
  Option.iter
    (fun reg ->
      let snap = Obs.Registry.snapshot reg in
      write_file "BENCH_obs_metrics.prom" (Obs.Expose.to_prometheus snap);
      write_file "BENCH_obs_metrics.json" (Obs.Expose.to_json snap);
      Bench_util.register_artifact ~name:"obs-metrics-prom"
        ~path:"BENCH_obs_metrics.prom";
      Bench_util.register_artifact ~name:"obs-metrics-json"
        ~path:"BENCH_obs_metrics.json")
    reg

let run () =
  Bench_util.section "E14: observability overhead (lib/obs on the hot paths)";
  Printf.printf
    "(counter pipeline, %d shards + 1 merger, batch %d, %d feeders; mean of %d \
     reps)\n"
    shards batch feeders reps;
  alloc_audits ();
  micro ();
  pipeline_overhead ()
