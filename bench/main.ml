(* The benchmark harness: regenerates every experiment in DESIGN.md's
   per-experiment index (the paper has no numeric tables; its claims are
   theorems, each of which corresponds to a measurable table here — see
   EXPERIMENTS.md for the mapping and the recorded results).

   Run with: dune exec bench/main.exe            (all experiments)
            dune exec bench/main.exe -- steps    (one section)
   Sections: steps checker error throughput morris quantiles pq ablation
   pipeline queue durable obs net micro

   The harness doubles as the regression gate:
            dune exec bench/main.exe -- compare OLD.json NEW.json
   diffs two BENCH_<exp>.json files (see Compare) and exits non-zero on
   fatal regressions — CI runs it against bench/baselines/. *)

(* One Bechamel Test.make per timed table: single-operation latencies backing
   the throughput tables E6 (CountMin update path) and E7 (counter update
   path), plus the query paths used by E5's reader. *)
let micro () =
  Bench_util.section "Microbenchmarks (Bechamel, ns per operation)";
  let family = Hashing.Family.seeded ~seed:3L ~rows:4 ~width:1024 in
  let km_family = Hashing.Family.seeded_km ~seed:3L ~rows:4 ~width:1024 in
  let pcm = Conc.Pcm.create ~family in
  let flat = Conc.Flat_pcm.create ~family ~domains:1 () in
  let km_pcm = Conc.Pcm.create ~family:km_family in
  let locked_cm = Conc.Locked_countmin.create ~family in
  let seq_cm = Sketches.Countmin.create ~family in
  let ivl_counter = Conc.Ivl_counter.create ~procs:8 in
  let faa = Conc.Faa_counter.create () in
  let locked = Conc.Locked_counter.create () in
  let x = ref 0 in
  let open Bechamel in
  let tests =
    [
      (* E6 table: CountMin update path — reference boxed-atomic layout,
         flat per-domain planes, and the two-hash (Kirsch–Mitzenmacher)
         family on the reference layout. *)
      Test.make ~name:"e6-pcm-update"
        (Staged.stage (fun () ->
             incr x;
             Conc.Pcm.update pcm !x));
      Test.make ~name:"e6-flat-pcm-update"
        (Staged.stage (fun () ->
             incr x;
             Conc.Flat_pcm.update flat ~domain:0 !x));
      Test.make ~name:"e6-km-pcm-update"
        (Staged.stage (fun () ->
             incr x;
             Conc.Pcm.update km_pcm !x));
      Test.make ~name:"e6-locked-cm-update"
        (Staged.stage (fun () ->
             incr x;
             Conc.Locked_countmin.update locked_cm !x));
      Test.make ~name:"e6-sequential-cm-update"
        (Staged.stage (fun () ->
             incr x;
             Sketches.Countmin.update seq_cm !x));
      (* E5 table: the reader's query path. *)
      Test.make ~name:"e5-pcm-query"
        (Staged.stage (fun () -> ignore (Conc.Pcm.query pcm 42)));
      Test.make ~name:"e5-flat-pcm-query"
        (Staged.stage (fun () -> ignore (Conc.Flat_pcm.query flat 42)));
      (* E7 table: counter update paths. *)
      Test.make ~name:"e7-ivl-counter-update"
        (Staged.stage (fun () -> Conc.Ivl_counter.update ivl_counter ~proc:0 1));
      Test.make ~name:"e7-faa-counter-update"
        (Staged.stage (fun () -> Conc.Faa_counter.update faa 1));
      Test.make ~name:"e7-locked-counter-update"
        (Staged.stage (fun () -> Conc.Locked_counter.update locked 1));
      (* E1 table's real-world analogue: the O(n) read. *)
      Test.make ~name:"e1-ivl-counter-read-n8"
        (Staged.stage (fun () -> ignore (Conc.Ivl_counter.read ivl_counter)));
    ]
  in
  let results = Bench_util.run_bechamel tests in
  List.iter
    (fun (name, ns) ->
      if Float.is_finite ns then
        Bench_util.record ~exp:"micro" ~name ~unit_:"ns/op" ns)
    results;
  Bench_util.print_bechamel_table ~title:"single-operation latency" results

let sections =
  [
    ("steps", Exp_steps.run);
    ("checker", Exp_checker.run);
    ("error", Exp_error.run);
    ("throughput", Exp_throughput.run);
    ("morris", Exp_morris.run);
    ("quantiles", Exp_quantiles.run);
    ("ablation", Exp_ablation.run);
    ("pq", Exp_pq.run);
    ("pipeline", Exp_pipeline.run);
    ("queue", Exp_queue.run);
    ("durable", Exp_durable.run);
    ("obs", Exp_obs.run);
    ("net", Exp_net.run);
    ("micro", micro);
  ]

let () =
  (* The compare subcommand never runs experiments: diff two recorded
     JSON files and exit with the gate's verdict. *)
  (match Array.to_list Sys.argv with
  | _ :: "compare" :: rest -> exit (Compare.main rest)
  | _ -> ());
  let requested =
    match Array.to_list Sys.argv with
    | _ :: args when args <> [] -> args
    | _ -> List.map fst sections
  in
  print_endline "IVL reproduction benchmark harness";
  print_endline "(see EXPERIMENTS.md for the experiment index and recorded results)";
  List.iter
    (fun name ->
      match List.assoc_opt name sections with
      | Some run -> run ()
      | None ->
          Printf.eprintf "unknown section %s (available: %s)\n" name
            (String.concat " " (List.map fst sections));
          exit 1)
    requested;
  (* Machine-readable mirror of the tables above: one BENCH_<exp>.json per
     instrumented experiment. *)
  print_newline ();
  Bench_util.write_json_files ()
