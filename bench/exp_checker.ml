(* E4 + E8: checker-based validation tables. Monte-carlo over random
   schedules: simulated PCM histories are always IVL (Lemma 7), frequently
   not linearizable; Example 9 replays exactly; the binary-snapshot
   reduction (Algorithm 3) decodes correctly over both counters. *)

module M = Simulation.Machine
module S = Simulation.Sched
module A = Simulation.Algos

let example9_hash row x =
  match (row, x) with
  | 0, (0 | 1) -> 0
  | 0, _ -> 1
  | 1, (0 | 2) -> 0
  | _ -> 1

let example9_family =
  Hashing.Family.of_mapping ~width:2
    [| (fun x -> example9_hash 0 x); (fun x -> example9_hash 1 x) |]

module Cm = Spec.Countmin_spec.Fixed (struct
  let family = example9_family
end)

module Cm_check = Ivl.Check.Make (Cm)
module Cm_lin = Ivl.Lincheck.Make (Cm)
module Counter_check = Ivl.Check.Make (Spec.Counter_spec)
module Counter_lin = Ivl.Lincheck.Make (Spec.Counter_spec)

let pcm_random_run seed =
  let pcm = A.Pcm_sim.make ~d:2 ~w:2 ~hash:example9_hash () in
  let scripts =
    [|
      List.map (fun e -> A.Pcm_sim.update_op pcm ~a:e ()) [ 0; 2; 3; 3; 3; 0 ];
      [ A.Pcm_sim.query_op pcm ~a:0 (); A.Pcm_sim.query_op pcm ~a:2 () ];
      [ A.Pcm_sim.update_op pcm ~a:2 () ];
    |]
  in
  M.run ~registers:(A.Pcm_sim.zero_registers pcm) ~scripts ~sched:(S.Random seed) ()

(* Uniformly random schedules almost never land both queries inside one
   update's 2-step window, so E4 also sweeps {e stall points}: p0 executes
   [k] steps of Example 9's element sequence, both queries run, then p0
   finishes — an adversarial family in the spirit of the paper's weak
   adversary. *)
let pcm_stall_run k =
  let pcm = A.Pcm_sim.make ~d:2 ~w:2 ~hash:example9_hash () in
  let scripts =
    [|
      List.map (fun e -> A.Pcm_sim.update_op pcm ~a:e ()) [ 0; 2; 3; 3; 3; 0 ];
      [ A.Pcm_sim.query_op pcm ~a:0 (); A.Pcm_sim.query_op pcm ~a:2 () ];
    |]
  in
  let sched = S.Explicit (List.init k (fun _ -> 0) @ [ 1; 1; 1; 1 ]) in
  M.run ~registers:(A.Pcm_sim.zero_registers pcm) ~scripts ~sched ()

let ivl_counter_random_run seed =
  let n = 3 in
  let scripts =
    [|
      [ A.Ivl_counter.update_op ~proc:0 ~amount:3 ();
        A.Ivl_counter.update_op ~proc:0 ~amount:1 () ];
      [ A.Ivl_counter.update_op ~proc:1 ~amount:2 () ];
      [ A.Ivl_counter.read_op ~n (); A.Ivl_counter.read_op ~n () ];
    |]
  in
  M.run ~registers:(A.Ivl_counter.registers ~n) ~scripts ~sched:(S.Random seed) ()

let cm_check_is_ivl h = Cm_check.is_ivl h
let cm_lin_is_lin h = Cm_lin.is_linearizable h

let run () =
  Bench_util.section "E4: checker verdicts over random schedules (Lemma 7 / Lemma 10)";
  let trials = 300 in
  let count run check lin =
    let ivl_ok = ref 0 and lin_ok = ref 0 in
    for seed = 1 to trials do
      let r = run (Int64.of_int seed) in
      if check r.M.history then incr ivl_ok;
      if lin r.M.history then incr lin_ok
    done;
    (!ivl_ok, !lin_ok)
  in
  let pcm_ivl, pcm_lin = count pcm_random_run Cm_check.is_ivl Cm_lin.is_linearizable in
  let cnt_ivl, cnt_lin =
    count ivl_counter_random_run Counter_check.is_ivl Counter_lin.is_linearizable
  in
  let stalls = 13 in
  let stall_ivl = ref 0 and stall_lin = ref 0 in
  for k = 0 to stalls - 1 do
    let r = pcm_stall_run k in
    if Cm_check.is_ivl r.M.history then incr stall_ivl;
    if Cm_lin.is_linearizable r.M.history then incr stall_lin
  done;
  Bench_util.table
    ~header:[ "algorithm / schedule family"; "schedules"; "IVL"; "linearizable" ]
    [
      [ "simulated PCM, uniform random"; string_of_int trials; string_of_int pcm_ivl;
        string_of_int pcm_lin ];
      [ "simulated PCM, stall-point sweep"; string_of_int stalls;
        string_of_int !stall_ivl; string_of_int !stall_lin ];
      [ "IVL batched counter (n=3), random"; string_of_int trials;
        string_of_int cnt_ivl; string_of_int cnt_lin ];
    ];
  print_endline
    "shape check: the IVL column always equals the schedule count (Lemmas 7 and";
  print_endline
    "10); the linearizable column drops below it on adversarial schedules.";

  Bench_util.subsection "exhaustive model checking (every schedule, not a sample)";
  let exhaustive ~mk_scripts ~registers ~check ~lin =
    let histories = M.explore ~registers ~scripts:mk_scripts () in
    let ivl_ok = List.length (List.filter check histories) in
    let lin_ok = List.length (List.filter lin histories) in
    (List.length histories, ivl_ok, lin_ok)
  in
  (* The full Example 9 configuration: the prefix, the straddling update and
     both queries — every one of its ~1800 schedules. *)
  let pcm = A.Pcm_sim.make ~d:2 ~w:2 ~hash:example9_hash () in
  let t1, i1, l1 =
    exhaustive
      ~mk_scripts:(fun () ->
        [|
          List.map (fun e -> A.Pcm_sim.update_op pcm ~a:e ()) [ 0; 2; 3; 3; 3; 0 ];
          [ A.Pcm_sim.query_op pcm ~a:0 (); A.Pcm_sim.query_op pcm ~a:2 () ];
        |])
      ~registers:(A.Pcm_sim.zero_registers pcm)
      ~check:cm_check_is_ivl ~lin:cm_lin_is_lin
  in
  let n = 3 in
  let t2, i2, l2 =
    exhaustive
      ~mk_scripts:(fun () ->
        [|
          [ A.Ivl_counter.update_op ~proc:0 ~amount:3 () ];
          [ A.Ivl_counter.update_op ~proc:1 ~amount:2 () ];
          [ A.Ivl_counter.read_op ~n () ];
        |])
      ~registers:(A.Ivl_counter.registers ~n)
      ~check:Counter_check.is_ivl ~lin:Counter_lin.is_linearizable
  in
  Bench_util.table
    ~header:[ "algorithm"; "distinct histories"; "IVL"; "linearizable" ]
    [
      [ "simulated PCM (Example 9 config)"; string_of_int t1; string_of_int i1;
        string_of_int l1 ];
      [ "IVL counter (2 updaters, 1 reader)"; string_of_int t2; string_of_int i2;
        string_of_int l2 ];
    ];
  print_endline
    "shape check: the IVL column equals the history count over the ENTIRE";
  print_endline "schedule space; the linearizable column falls short.";

  Bench_util.subsection "Example 9 exact replay (machine level)";
  let pcm = A.Pcm_sim.make ~d:2 ~w:2 ~hash:example9_hash () in
  let scripts =
    [|
      List.map (fun e -> A.Pcm_sim.update_op pcm ~a:e ()) [ 0; 2; 3; 3; 3 ]
      @ [ A.Pcm_sim.update_op pcm ~a:0 () ];
      [ A.Pcm_sim.query_op pcm ~a:0 (); A.Pcm_sim.query_op pcm ~a:2 () ];
    |]
  in
  let sched =
    S.Explicit ([ 0; 0; 0; 0; 0; 0; 0; 0; 0; 0 ] @ [ 0 ] @ [ 1; 1; 1; 1 ] @ [ 0 ])
  in
  let r = M.run ~registers:(A.Pcm_sim.zero_registers pcm) ~scripts ~sched () in
  Printf.printf "Example 9: linearizable=%b IVL=%b (paper: false / true)\n"
    (Cm_lin.is_linearizable r.M.history)
    (Cm_check.is_ivl r.M.history);

  Bench_util.section "E8: binary snapshot from a batched counter (Algorithm 3)";
  let decode_run counter_impl n =
    let bs = Simulation.Binary_snapshot.create ~n counter_impl in
    let scripts =
      Array.init (n + 1) (fun p ->
          if p < n then
            [
              Simulation.Binary_snapshot.update_op bs ~proc:p ~v:1 ();
              Simulation.Binary_snapshot.update_op bs ~proc:p ~v:(p mod 2) ();
            ]
          else [ Simulation.Binary_snapshot.scan_op bs () ])
    in
    let r =
      M.run
        ~registers:(Simulation.Binary_snapshot.registers bs)
        ~scripts
        (* Serialize: give each updater enough explicit steps to finish both
           updates (snapshot updates cost O(n^2) steps); unused entries are
           skipped, and the scanner runs once the updaters are drained. *)
        ~sched:
          (S.Explicit
             (List.concat (List.init n (fun p -> List.init 500 (fun _ -> p)))))
        ()
    in
    let scan =
      List.find (fun o -> Hist.Op.is_query o) (Hist.History.completed r.M.history)
    in
    (* After the serial schedule, component p holds p mod 2. *)
    let expected =
      List.fold_left (fun acc p -> acc lor ((p mod 2) lsl p)) 0 (List.init n Fun.id)
    in
    (Option.get scan.Hist.Op.ret, expected)
  in
  let rows =
    List.concat_map
      (fun n ->
        let got_faa, want_faa = decode_run A.Faa_counter.impl n in
        let got_swmr, want_swmr = decode_run (Simulation.Snapshot.impl ~n:(n + 1)) n in
        [
          [ Printf.sprintf "n=%d over FAA counter" n;
            string_of_int got_faa; string_of_int want_faa;
            string_of_bool (got_faa = want_faa) ];
          [ Printf.sprintf "n=%d over SWMR snapshot counter" n;
            string_of_int got_swmr; string_of_int want_swmr;
            string_of_bool (got_swmr = want_swmr) ];
        ])
      [ 2; 4; 8 ]
  in
  Bench_util.table ~header:[ "configuration"; "decoded"; "expected"; "ok" ] rows
