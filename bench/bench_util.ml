(* Table rendering and bechamel plumbing shared by the experiment modules. *)

let section title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let subsection title = Printf.printf "\n-- %s --\n" title

(* Print an aligned table: header row + string rows. *)
let table ~header rows =
  let all = header :: rows in
  let cols = List.length header in
  let widths =
    List.init cols (fun c ->
        List.fold_left (fun acc row -> max acc (String.length (List.nth row c))) 0 all)
  in
  let print_row row =
    List.iteri
      (fun c cell -> Printf.printf "%-*s  " (List.nth widths c) cell)
      row;
    print_newline ()
  in
  print_row header;
  print_row (List.map (fun w -> String.make w '-') widths);
  List.iter print_row rows

let fmt_float ?(digits = 1) v = Printf.sprintf "%.*f" digits v

let fmt_rate ops seconds =
  if seconds <= 0.0 then "inf" else Printf.sprintf "%.2f" (float_of_int ops /. seconds /. 1e6)

(* Run a list of bechamel tests and return (name, ns/op) pairs. One
   Test.make per timed table lives in the caller; this helper owns the
   configuration so every table is measured identically. *)
let run_bechamel tests =
  let open Bechamel in
  let open Toolkit in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None () in
  let raw =
    Benchmark.all cfg [ Instance.monotonic_clock ] (Test.make_grouped ~name:"bench" tests)
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Hashtbl.fold
    (fun name ols acc ->
      match Analyze.OLS.estimates ols with
      | Some [ ns ] -> (name, ns) :: acc
      | _ -> (name, nan) :: acc)
    results []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let print_bechamel_table ~title results =
  subsection title;
  table
    ~header:[ "benchmark"; "ns/op" ]
    (List.map (fun (name, ns) -> [ name; fmt_float ~digits:1 ns ]) results)
