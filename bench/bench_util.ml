(* Table rendering and bechamel plumbing shared by the experiment modules. *)

let section title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let subsection title = Printf.printf "\n-- %s --\n" title

(* Print an aligned table: header row + string rows. *)
let table ~header rows =
  let all = header :: rows in
  let cols = List.length header in
  let widths =
    List.init cols (fun c ->
        List.fold_left (fun acc row -> max acc (String.length (List.nth row c))) 0 all)
  in
  let print_row row =
    List.iteri
      (fun c cell -> Printf.printf "%-*s  " (List.nth widths c) cell)
      row;
    print_newline ()
  in
  print_row header;
  print_row (List.map (fun w -> String.make w '-') widths);
  List.iter print_row rows

let fmt_float ?(digits = 1) v = Printf.sprintf "%.*f" digits v

let fmt_rate ops seconds =
  if seconds <= 0.0 then "inf" else Printf.sprintf "%.2f" (float_of_int ops /. seconds /. 1e6)

(* Run a list of bechamel tests and return (name, ns/op) pairs. One
   Test.make per timed table lives in the caller; this helper owns the
   configuration so every table is measured identically. *)
let run_bechamel tests =
  let open Bechamel in
  let open Toolkit in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None () in
  let raw =
    Benchmark.all cfg [ Instance.monotonic_clock ] (Test.make_grouped ~name:"bench" tests)
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Hashtbl.fold
    (fun name ols acc ->
      match Analyze.OLS.estimates ols with
      | Some [ ns ] -> (name, ns) :: acc
      | _ -> (name, nan) :: acc)
    results []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let print_bechamel_table ~title results =
  subsection title;
  table
    ~header:[ "benchmark"; "ns/op" ]
    (List.map (fun (name, ns) -> [ name; fmt_float ~digits:1 ns ]) results)

(* --- machine-readable results ---------------------------------------- *)

(* Experiments register measurements as they print their tables; after the
   requested sections have run, the harness writes one BENCH_<exp>.json per
   experiment so CI and notebooks diff numbers without scraping stdout.

   Schema (one file per experiment):
     { "exp": "<name>",
       "entries": [ { "name": "<metric>",
                      "params": { "<k>": <json value>, ... },
                      "unit": "<unit>",
                      "reps": <n samples>,
                      "mean": <float>, "p50": <float>, "p99": <float>,
                      "ops_per_sec": <float, when the unit encodes a rate> },
                    ... ] }

   Entries whose unit is a rate ("Mops/s", "ops/s") or a latency ("ns/op")
   also carry a normalized "ops_per_sec" field so `bench compare` and
   notebooks diff throughput without re-learning unit conventions.
   Allocation audits record with unit "B/op" (bytes allocated per
   operation); those entries are the structural side of the regression
   gate — a hot path growing from 0 B/op is a layout bug, not noise. *)

type json_entry = {
  name : string;
  params : (string * string) list; (* values are already-encoded JSON *)
  unit_ : string;
  samples : float list;
}

let json_records : (string, json_entry list ref) Hashtbl.t = Hashtbl.create 7

let json_int (i : int) = string_of_int i
let json_float (f : float) = Printf.sprintf "%.17g" f

let json_string s =
  let b = Buffer.create (String.length s + 2) in
  Buffer.add_char b '"';
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"';
  Buffer.contents b

let record_samples ~exp ~name ?(params = []) ?(unit_ = "Mops/s") samples =
  if samples = [] then invalid_arg "Bench_util.record_samples: no samples";
  let entries =
    match Hashtbl.find_opt json_records exp with
    | Some r -> r
    | None ->
        let r = ref [] in
        Hashtbl.add json_records exp r;
        r
  in
  entries := { name; params; unit_; samples } :: !entries

let record ~exp ~name ?(params = []) ?(unit_ = "Mops/s") sample =
  record_samples ~exp ~name ~params ~unit_ [ sample ]

(* Non-numeric files an experiment leaves next to the BENCH_*.json mirrors
   (e.g. E13's metrics snapshot). Listed in the summary manifest so CI
   uploads and notebooks find them from the one well-known name. *)
let artifacts : (string * string) list ref = ref []
let register_artifact ~name ~path = artifacts := (name, path) :: !artifacts

let ops_per_sec ~unit_ mean =
  match unit_ with
  | "Mops/s" -> Some (mean *. 1e6)
  | "ops/s" -> Some mean
  | "ns/op" -> if mean > 0.0 then Some (1e9 /. mean) else None
  | _ -> None

(* Bytes the current domain allocates per call of [f] (minor + major,
   from the GC's own counters — exact, not sampled). Used by the
   allocation audits: the flat/one-pass hot paths are designed to
   allocate nothing, and the committed baseline pins that at 0 B/op. *)
let allocated_bytes_per_op ~ops f =
  if ops <= 0 then invalid_arg "Bench_util.allocated_bytes_per_op: ops <= 0";
  (* Warm once so one-time laziness (format strings, closures) doesn't
     bill the first measured batch. *)
  f ();
  let before = Gc.allocated_bytes () in
  for _ = 1 to ops do
    f ()
  done;
  (Gc.allocated_bytes () -. before) /. float_of_int ops

(* Best-effort provenance for the summary manifest: the commit the numbers
   were measured at, or null outside a git checkout. *)
let git_sha () =
  try
    let ic = Unix.open_process_in "git rev-parse HEAD 2>/dev/null" in
    let line = try String.trim (input_line ic) with End_of_file -> "" in
    ignore (Unix.close_process_in ic);
    if String.length line = 40 then Some line else None
  with _ -> None

let iso8601_now () =
  let t = Unix.gmtime (Unix.gettimeofday ()) in
  Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (t.Unix.tm_year + 1900)
    (t.Unix.tm_mon + 1) t.Unix.tm_mday t.Unix.tm_hour t.Unix.tm_min
    t.Unix.tm_sec

let write_json_files () =
  let exps =
    Hashtbl.fold (fun exp r acc -> (exp, List.rev !r) :: acc) json_records []
    |> List.sort compare
  in
  List.iter
    (fun (exp, entries) ->
      let file = Printf.sprintf "BENCH_%s.json" exp in
      let oc = open_out file in
      let entry_json { name; params; unit_; samples } =
        let arr = Array.of_list samples in
        let mean =
          List.fold_left ( +. ) 0.0 samples /. float_of_int (Array.length arr)
        in
        Printf.sprintf
          "    { \"name\": %s,\n\
          \      \"params\": { %s },\n\
          \      \"unit\": %s,\n\
          \      \"reps\": %d,\n\
          \      \"mean\": %s, \"p50\": %s, \"p99\": %s%s }"
          (json_string name)
          (String.concat ", "
             (List.map (fun (k, v) -> json_string k ^ ": " ^ v) params))
          (json_string unit_) (Array.length arr) (json_float mean)
          (json_float (Stats.Percentile.median arr))
          (json_float (Stats.Percentile.percentile arr 99.0))
          (match ops_per_sec ~unit_ mean with
          | Some r -> Printf.sprintf ",\n      \"ops_per_sec\": %s" (json_float r)
          | None -> "")
      in
      Printf.fprintf oc "{ \"exp\": %s,\n  \"entries\": [\n%s\n  ]\n}\n"
        (json_string exp)
        (String.concat ",\n" (List.map entry_json entries));
      close_out oc;
      Printf.printf "wrote %s (%d entries)\n" file (List.length entries))
    exps;
  (* Top-level manifest so CI artifacts and notebooks can discover the
     per-experiment files — and tie them to a commit and a wall-clock — from
     one well-known name. *)
  if exps <> [] then begin
    let oc = open_out "BENCH_summary.json" in
    Printf.fprintf oc
      "{ \"generated_at\": %s,\n\
      \  \"git_sha\": %s,\n\
      \  \"files\": [\n\
       %s\n\
      \  ],\n\
      \  \"artifacts\": [%s]\n\
       }\n"
      (json_string (iso8601_now ()))
      (match git_sha () with Some s -> json_string s | None -> "null")
      (String.concat ",\n"
         (List.map
            (fun (exp, entries) ->
              Printf.sprintf
                "    { \"exp\": %s, \"file\": %s, \"entries\": %d }"
                (json_string exp)
                (json_string (Printf.sprintf "BENCH_%s.json" exp))
                (List.length entries))
            exps))
      (match List.rev !artifacts with
      | [] -> ""
      | arts ->
          "\n"
          ^ String.concat ",\n"
              (List.map
                 (fun (name, path) ->
                   Printf.sprintf "    { \"name\": %s, \"path\": %s }"
                     (json_string name) (json_string path))
                 arts)
          ^ "\n  ");
    close_out oc;
    Printf.printf "wrote BENCH_summary.json (%d experiment file(s))\n"
      (List.length exps)
  end
