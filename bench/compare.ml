(* `bench compare OLD.json NEW.json`: diff two BENCH_<exp>.json files and
   gate on regressions.

   Two classes of regression, treated differently because they have
   different noise profiles:

   - {e timing} (units "Mops/s", "ops/s", "ns/op"): relative change past
     [--threshold] percent. Real but noisy on shared CI runners, so the
     default [--timing warn] only reports; [--timing fail] makes it fatal
     for quiet dedicated hosts.
   - {e structural} (unit "B/op", the allocation audits): a hot path that
     allocated 0 bytes per op and now allocates is a layout/boxing bug
     that no amount of runner noise explains. Any increase beyond float
     dust is always fatal.

   A third class, {e budgets} (unit "pct" — relative overheads like E14's
   instrumented-vs-bare pipeline delta), gates on absolute drift: the
   value is already a percentage, so relative thresholds make no sense.
   Growing by more than 5 points over the recorded baseline is fatal —
   a telemetry layer quietly doubling its overhead is a design break,
   not noise.

   Entries are matched by (name, params); entries present only in OLD are
   reported (a silently vanished benchmark must not read as "no
   regressions") but not fatal, so the gate survives adding/renaming
   benchmarks without ratcheting. *)

(* --- a minimal JSON reader ------------------------------------------- *)

(* The repo vendors no JSON library, and the bench schema is small: a
   recursive-descent reader over the full value grammar keeps the gate
   honest even if the writer evolves. *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Parse_error of string

let parse_json (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at byte %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else fail ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
          advance ();
          (if !pos >= n then fail "unterminated escape";
           match s.[!pos] with
           | '"' -> Buffer.add_char b '"'
           | '\\' -> Buffer.add_char b '\\'
           | '/' -> Buffer.add_char b '/'
           | 'n' -> Buffer.add_char b '\n'
           | 't' -> Buffer.add_char b '\t'
           | 'r' -> Buffer.add_char b '\r'
           | 'b' -> Buffer.add_char b '\b'
           | 'f' -> Buffer.add_char b '\012'
           | 'u' ->
               if !pos + 4 >= n then fail "truncated \\u escape";
               let hex = String.sub s (!pos + 1) 4 in
               let code =
                 try int_of_string ("0x" ^ hex) with _ -> fail "bad \\u escape"
               in
               (* The bench writer only escapes control characters; a BMP
                  code point decoded as Latin-1-ish is fine for display. *)
               if code < 0x80 then Buffer.add_char b (Char.chr code)
               else Buffer.add_string b (Printf.sprintf "\\u%04x" code);
               pos := !pos + 4
           | c -> fail (Printf.sprintf "bad escape '\\%c'" c));
          advance ();
          go ()
      | c ->
          Buffer.add_char b c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && num_char s.[!pos] do
      advance ()
    done;
    let lit = String.sub s start (!pos - start) in
    match float_of_string_opt lit with
    | Some f -> f
    | None -> fail ("bad number " ^ lit)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ((k, v) :: acc)
            | Some '}' ->
                advance ();
                Obj (List.rev ((k, v) :: acc))
            | _ -> fail "expected ',' or '}'"
          in
          members []
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else begin
          let rec elements acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elements (v :: acc)
            | Some ']' ->
                advance ();
                Arr (List.rev (v :: acc))
            | _ -> fail "expected ',' or ']'"
          in
          elements []
        end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Num (parse_number ())
    | None -> fail "unexpected end of input"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

(* --- entry extraction -------------------------------------------------- *)

type entry = { key : string; unit_ : string; mean : float }

let member k = function Obj fields -> List.assoc_opt k fields | _ -> None

let render_param = function
  | Null -> "null"
  | Bool b -> string_of_bool b
  | Num f -> Printf.sprintf "%g" f
  | Str s -> s
  | Arr _ | Obj _ -> "<nested>"

let entries_of_file path =
  let contents =
    let ic = open_in_bin path in
    let len = in_channel_length ic in
    let b = really_input_string ic len in
    close_in ic;
    b
  in
  let root = parse_json contents in
  let exp =
    match member "exp" root with Some (Str e) -> e | _ -> "<unknown>"
  in
  let entries =
    match member "entries" root with
    | Some (Arr es) ->
        List.filter_map
          (fun e ->
            match (member "name" e, member "unit" e, member "mean" e) with
            | Some (Str name), Some (Str unit_), Some (Num mean) ->
                let params =
                  match member "params" e with
                  | Some (Obj ps) ->
                      List.map (fun (k, v) -> (k, render_param v)) ps
                      |> List.sort compare
                  | _ -> []
                in
                let key =
                  name
                  ^ String.concat ""
                      (List.map (fun (k, v) -> Printf.sprintf "{%s=%s}" k v) params)
                in
                Some { key; unit_; mean }
            | _ -> None)
          es
    | _ -> []
  in
  (exp, entries)

(* --- comparison -------------------------------------------------------- *)

(* Direction of "better" per unit; [None] means the unit is informational
   (counts, ratios) and only reported, never gated. *)
let timing_direction = function
  | "Mops/s" | "ops/s" -> Some `Higher_is_better
  | "ns/op" -> Some `Lower_is_better
  | _ -> None

let structural_unit = function "B/op" -> true | _ -> false

(* Overhead budgets are percentages already; gate on absolute points. *)
let budget_unit = function "pct" -> true | _ -> false

let budget_slack_points = 5.0

(* Speedup factors (unit "x" — e.g. E18's lockfree-over-mutex pipeline
   gain): the recorded ratio is the claim, so a drop past [factor_slack]
   of the baseline is fatal even when plain timing entries only warn —
   both sides of a ratio run in the same process, so runner noise mostly
   cancels and a shrinking factor means the win itself regressed. *)
let factor_unit = function "x" -> true | _ -> false

let factor_slack = 0.15

(* Correctness counters (the soak harness's IVL verdicts): zero tolerance.
   A single violation is a correctness break, not noise, so any increase
   over the baseline — which is always 0 — is fatal regardless of
   thresholds. *)
let violation_unit = function "violations" -> true | _ -> false

let main args =
  let threshold = ref 20.0 in
  let timing_fatal = ref false in
  let files = ref [] in
  let usage () =
    prerr_endline
      "usage: bench compare OLD.json NEW.json [--threshold PCT] [--timing \
       warn|fail]";
    2
  in
  let rec parse = function
    | [] -> None
    | "--threshold" :: v :: rest -> (
        match float_of_string_opt v with
        | Some f when f >= 0.0 ->
            threshold := f;
            parse rest
        | _ -> Some "bad --threshold")
    | "--timing" :: v :: rest -> (
        match v with
        | "warn" ->
            timing_fatal := false;
            parse rest
        | "fail" ->
            timing_fatal := true;
            parse rest
        | _ -> Some "bad --timing (expected warn or fail)")
    | f :: rest ->
        files := f :: !files;
        parse rest
  in
  match (parse args, List.rev !files) with
  | Some err, _ ->
      prerr_endline ("bench compare: " ^ err);
      usage ()
  | None, [ old_file; new_file ] -> (
      try
        let old_exp, old_entries = entries_of_file old_file in
        let new_exp, new_entries = entries_of_file new_file in
        if old_exp <> new_exp then
          Printf.printf "note: comparing different experiments (%s vs %s)\n"
            old_exp new_exp;
        Printf.printf "comparing %s: %s (%d entries) -> %s (%d entries)\n"
          old_exp old_file (List.length old_entries) new_file
          (List.length new_entries);
        let failures = ref [] in
        let warnings = ref [] in
        let fatal fmt = Printf.ksprintf (fun s -> failures := s :: !failures) fmt in
        let warn fmt = Printf.ksprintf (fun s -> warnings := s :: !warnings) fmt in
        let rows =
          List.filter_map
            (fun (o : entry) ->
              match List.find_opt (fun n -> n.key = o.key) new_entries with
              | None ->
                  warn "entry %s missing from %s" o.key new_file;
                  None
              | Some nw ->
                  let delta_pct =
                    if o.mean = 0.0 then
                      if nw.mean = 0.0 then 0.0 else infinity
                    else (nw.mean -. o.mean) /. Float.abs o.mean *. 100.0
                  in
                  let verdict =
                    if violation_unit o.unit_ then
                      if nw.mean > o.mean +. 1e-9 then begin
                        fatal
                          "VIOLATIONS %s: %.0f -> %.0f (correctness gate is \
                           zero-tolerance)"
                          o.key o.mean nw.mean;
                        "FAIL"
                      end
                      else "ok"
                    else if structural_unit o.unit_ then
                      (* float dust from Gc.allocated_bytes division *)
                      if nw.mean > o.mean +. 0.5 then begin
                        fatal
                          "STRUCTURAL %s: %.1f -> %.1f %s (hot path now \
                           allocates)"
                          o.key o.mean nw.mean o.unit_;
                        "FAIL"
                      end
                      else "ok"
                    else if factor_unit o.unit_ then
                      if nw.mean < o.mean *. (1.0 -. factor_slack) then begin
                        fatal
                          "FACTOR %s: %.2fx -> %.2fx (speedup dropped more \
                           than %.0f%% below the recorded baseline)"
                          o.key o.mean nw.mean (factor_slack *. 100.0);
                        "FAIL"
                      end
                      else "ok"
                    else if budget_unit o.unit_ then
                      if nw.mean > o.mean +. budget_slack_points then begin
                        fatal
                          "BUDGET %s: %.1f -> %.1f pct (more than %.0f points \
                           over the recorded overhead)"
                          o.key o.mean nw.mean budget_slack_points;
                        "FAIL"
                      end
                      else "ok"
                    else
                      match timing_direction o.unit_ with
                      | None -> "info"
                      | Some dir ->
                          let regressed =
                            match dir with
                            | `Higher_is_better -> delta_pct < -.(!threshold)
                            | `Lower_is_better -> delta_pct > !threshold
                          in
                          if regressed then begin
                            if !timing_fatal then begin
                              fatal "TIMING %s: %.3g -> %.3g %s (%+.1f%%)"
                                o.key o.mean nw.mean o.unit_ delta_pct;
                              "FAIL"
                            end
                            else begin
                              warn "timing %s: %.3g -> %.3g %s (%+.1f%%)" o.key
                                o.mean nw.mean o.unit_ delta_pct;
                              "warn"
                            end
                          end
                          else "ok"
                  in
                  Some
                    [
                      o.key;
                      o.unit_;
                      Printf.sprintf "%.4g" o.mean;
                      Printf.sprintf "%.4g" nw.mean;
                      Printf.sprintf "%+.1f%%" delta_pct;
                      verdict;
                    ])
            old_entries
        in
        Bench_util.table
          ~header:[ "entry"; "unit"; "old"; "new"; "delta"; "gate" ]
          rows;
        List.iter (Printf.printf "WARN: %s\n") (List.rev !warnings);
        List.iter (Printf.printf "FAIL: %s\n") (List.rev !failures);
        if !failures <> [] then begin
          Printf.printf "bench compare: FAIL (%d fatal regression(s))\n"
            (List.length !failures);
          1
        end
        else begin
          Printf.printf "bench compare: PASS (%d warning(s), threshold %.0f%%, timing %s)\n"
            (List.length !warnings) !threshold
            (if !timing_fatal then "fail" else "warn");
          0
        end
      with
      | Sys_error msg ->
          Printf.eprintf "bench compare: %s\n" msg;
          2
      | Parse_error msg ->
          Printf.eprintf "bench compare: JSON parse error: %s\n" msg;
          2)
  | None, _ -> usage ()
